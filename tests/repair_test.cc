#include <gtest/gtest.h>

#include <set>

#include "datagen/datasets.h"
#include "repair/corrector.h"

namespace birnn::repair {
namespace {

data::Table TableOf(const std::vector<std::string>& columns,
                    const std::vector<std::vector<std::string>>& rows) {
  data::Table t(columns);
  for (const auto& row : rows) {
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

std::vector<uint8_t> MaskAll(const data::Table& t) {
  return std::vector<uint8_t>(
      static_cast<size_t>(t.num_rows()) * t.num_columns(), 1);
}

std::vector<uint8_t> MaskNone(const data::Table& t) {
  return std::vector<uint8_t>(
      static_cast<size_t>(t.num_rows()) * t.num_columns(), 0);
}

std::vector<uint8_t> MaskDiff(const data::Table& dirty,
                              const data::Table& clean) {
  std::vector<uint8_t> mask = MaskNone(dirty);
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      if (dirty.cell(r, c) != clean.cell(r, c)) {
        mask[static_cast<size_t>(r) * dirty.num_columns() + c] = 1;
      }
    }
  }
  return mask;
}

const RepairSuggestion* Find(const std::vector<RepairSuggestion>& suggestions,
                             int row, int attr) {
  for (const auto& s : suggestions) {
    if (s.row == row && s.attr == attr) return &s;
  }
  return nullptr;
}

TEST(FormatNormalizerTest, StripsUnitsSeparatorsAndDates) {
  const data::Table t = TableOf({"ounces", "count", "time"},
                                {{"12.0 oz", "379,998", "12/02/2011 6:55 a.m."},
                                 {"16.0", "500", "7:10 p.m."}});
  FormatNormalizerEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, MaskAll(t), &out);
  ASSERT_NE(Find(out, 0, 0), nullptr);
  EXPECT_EQ(Find(out, 0, 0)->repaired, "12.0");
  ASSERT_NE(Find(out, 0, 1), nullptr);
  EXPECT_EQ(Find(out, 0, 1)->repaired, "379998");
  ASSERT_NE(Find(out, 0, 2), nullptr);
  EXPECT_EQ(Find(out, 0, 2)->repaired, "6:55 a.m.");
  // Clean cells produce no suggestion even when flagged.
  EXPECT_EQ(Find(out, 1, 2), nullptr);
}

TEST(FormatNormalizerTest, RestoresLeadingZeros) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({"0190" + std::to_string(i % 10)});
  rows.push_back({"1907"});  // stripped zero
  const data::Table t = TableOf({"zip"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[20] = 1;
  FormatNormalizerEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  ASSERT_NE(Find(out, 20, 0), nullptr);
  EXPECT_EQ(Find(out, 20, 0)->repaired, "01907");
}

TEST(FormatNormalizerTest, StripsTrailingDecimalInIntColumn) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({std::to_string(i)});
  rows.push_back({"7.0"});
  const data::Table t = TableOf({"rate"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[20] = 1;
  FormatNormalizerEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  ASSERT_NE(Find(out, 20, 0), nullptr);
  EXPECT_EQ(Find(out, 20, 0)->repaired, "7");
}

TEST(DictionaryCorrectorTest, FixesTypoToFrequentValue) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({"Birmingham"});
  rows.push_back({"Birmingxam"});
  const data::Table t = TableOf({"city"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[30] = 1;
  DictionaryCorrectorEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  ASSERT_NE(Find(out, 30, 0), nullptr);
  EXPECT_EQ(Find(out, 30, 0)->repaired, "Birmingham");
}

TEST(DictionaryCorrectorTest, SkipsDistantValues) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({"Birmingham"});
  rows.push_back({"zzzzz"});
  const data::Table t = TableOf({"city"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[30] = 1;
  DictionaryCorrectorEngine engine(2);
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  EXPECT_EQ(Find(out, 30, 0), nullptr);
}

TEST(FdCorrectorTest, RepairsDependencyViolation) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({"Portland", "OR"});
  for (int i = 0; i < 20; ++i) rows.push_back({"Austin", "TX"});
  rows.push_back({"Portland", "TX"});
  const data::Table t = TableOf({"city", "state"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[static_cast<size_t>(40) * 2 + 1] = 1;
  FdCorrectorEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  ASSERT_NE(Find(out, 40, 1), nullptr);
  EXPECT_EQ(Find(out, 40, 1)->repaired, "OR");
}

TEST(DuplicateCorrectorTest, MajorityVoteAcrossSources) {
  std::vector<std::vector<std::string>> rows;
  for (int f = 0; f < 30; ++f) {
    const std::string time = std::to_string(1 + f % 12) + ":30 a.m.";
    for (int s = 0; s < 4; ++s) {
      rows.push_back({"FL" + std::to_string(f), time});
    }
  }
  rows[2][1] = "9:99 p.m.";  // one source disagrees on flight FL0
  const data::Table t = TableOf({"flight", "time"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[static_cast<size_t>(2) * 2 + 1] = 1;
  DuplicateCorrectorEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  ASSERT_NE(Find(out, 2, 1), nullptr);
  EXPECT_EQ(Find(out, 2, 1)->repaired, "1:30 a.m.");
}

TEST(MissingValueImputerTest, ImputesDominantValue) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 28; ++i) rows.push_back({"yes"});
  rows.push_back({"no"});
  rows.push_back({"NaN"});
  const data::Table t = TableOf({"emergency"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[29] = 1;
  MissingValueImputerEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  ASSERT_NE(Find(out, 29, 0), nullptr);
  EXPECT_EQ(Find(out, 29, 0)->repaired, "yes");
}

TEST(MissingValueImputerTest, SkipsDiverseColumns) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({"v" + std::to_string(i)});
  rows.push_back({""});
  const data::Table t = TableOf({"id"}, rows);
  std::vector<uint8_t> mask = MaskNone(t);
  mask[30] = 1;
  MissingValueImputerEngine engine;
  std::vector<RepairSuggestion> out;
  engine.Propose(t, mask, &out);
  EXPECT_EQ(Find(out, 30, 0), nullptr);
}

TEST(RepairerTest, KeepsBestSuggestionPerCellAndApplies) {
  datagen::GenOptions gen;
  gen.scale = 0.15;
  gen.seed = 5;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  Repairer repairer;
  // Oracle mask: exactly the erroneous cells (isolates repair quality from
  // detection quality).
  const std::vector<uint8_t> mask = MaskDiff(pair.dirty, pair.clean);
  const std::vector<RepairSuggestion> suggestions =
      repairer.Repair(pair.dirty, mask);
  EXPECT_FALSE(suggestions.empty());

  // At most one suggestion per cell.
  std::set<std::pair<int64_t, int>> cells;
  for (const auto& s : suggestions) {
    EXPECT_TRUE(cells.insert({s.row, s.attr}).second);
    EXPECT_NE(s.repaired, s.original);
  }

  const RepairMetrics metrics =
      EvaluateRepairs(pair.dirty, pair.clean, suggestions);
  EXPECT_GT(metrics.Precision(), 0.5);
  EXPECT_GT(metrics.Recall(), 0.3);

  const data::Table repaired = repairer.Apply(pair.dirty, suggestions);
  // Applying correct repairs strictly reduces the number of dirty cells.
  int64_t before = 0;
  int64_t after = 0;
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < pair.dirty.num_columns(); ++c) {
      if (pair.dirty.cell(r, c) != pair.clean.cell(r, c)) ++before;
      if (repaired.cell(r, c) != pair.clean.cell(r, c)) ++after;
    }
  }
  EXPECT_LT(after, before);
}

TEST(RepairerTest, EmptyMaskProposesNothing) {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  const datagen::DatasetPair pair = datagen::MakeTax(gen);
  Repairer repairer;
  EXPECT_TRUE(repairer.Repair(pair.dirty, MaskNone(pair.dirty)).empty());
}

TEST(RepairMetricsTest, Degenerate) {
  RepairMetrics m;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
}

}  // namespace
}  // namespace birnn::repair
