#include "core/inference.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "nn/graph.h"
#include "nn/ops.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace birnn::core {
namespace {

/// A small table with heavy value repetition (11 distinct values over 60
/// rows) and varying cell lengths — the workload the memoizing, bucketing
/// engine is built for.
data::EncodedDataset DuplicateHeavyDataset() {
  data::Table dirty(std::vector<std::string>{"a", "b", "c"});
  data::Table clean(std::vector<std::string>{"a", "b", "c"});
  Rng rng(41);
  for (int i = 0; i < 60; ++i) {
    const std::string v = "value" + std::to_string(i % 11);
    const std::string w(static_cast<size_t>(1 + i % 7), 'x');
    EXPECT_TRUE(dirty
                    .AppendRow({rng.Bernoulli(0.4) ? v + "!" : v, w,
                                "fixed-content"})
                    .ok());
    EXPECT_TRUE(clean.AppendRow({v, w, "fixed-content"}).ok());
  }
  auto frame = data::PrepareData(dirty, clean);
  EXPECT_TRUE(frame.ok());
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  return data::EncodeCells(*frame, chars);
}

ModelConfig SmallConfig(const data::EncodedDataset& ds) {
  ModelConfig config;
  config.vocab = ds.vocab;
  config.max_len = ds.max_len;
  config.n_attrs = ds.n_attrs;
  config.char_emb_dim = 6;
  config.units = 9;  // odd on purpose: exercises non-multiple-of-16 shapes
  config.stacks = 2;
  config.bidirectional = true;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 3;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 6;
  config.seed = 17;
  return config;
}

std::vector<int64_t> AllIndices(const data::EncodedDataset& ds) {
  std::vector<int64_t> indices(static_cast<size_t>(ds.num_cells()));
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    indices[static_cast<size_t>(i)] = i;
  }
  return indices;
}

TEST(InferenceScratchTest, PredictProbsScratchMatchesScratchFree) {
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));

  const BatchInput batch = MakeBatch(ds, AllIndices(ds));
  std::vector<float> plain;
  model.PredictProbs(batch, &plain);

  InferenceScratch scratch;
  std::vector<float> scratched;
  model.PredictProbs(batch, &scratched, &scratch);
  ASSERT_EQ(plain.size(), scratched.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], scratched[i]) << "cell " << i;  // bit-identical
  }

  // Reusing the same scratch for a second, different batch must not leak
  // state from the first.
  std::vector<int64_t> subset;
  for (int64_t i = 3; i < ds.num_cells(); i += 7) subset.push_back(i);
  const BatchInput batch2 = MakeBatch(ds, subset);
  std::vector<float> plain2;
  model.PredictProbs(batch2, &plain2);
  std::vector<float> scratched2;
  model.PredictProbs(batch2, &scratched2, &scratch);
  ASSERT_EQ(plain2.size(), scratched2.size());
  for (size_t i = 0; i < plain2.size(); ++i) {
    EXPECT_EQ(plain2[i], scratched2[i]) << "cell " << i;
  }
}

TEST(InferenceParityTest, ForwardOnlyMatchesTrainingGraphSoftmax) {
  // The forward-only path (running batch-norm stats) must agree with the
  // autodiff graph run in eval mode + explicit softmax.
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));
  model.CalibrateBatchNorm(ds);

  const BatchInput batch = MakeBatch(ds, AllIndices(ds));
  nn::Graph g;
  const nn::Graph::Var logits = model.Forward(&g, batch, /*training=*/false);
  nn::Tensor graph_probs;
  nn::SoftmaxRows(g.value(logits), &graph_probs);

  std::vector<float> fast;
  model.PredictProbs(batch, &fast);
  ASSERT_EQ(static_cast<size_t>(graph_probs.rows()), fast.size());
  for (int i = 0; i < graph_probs.rows(); ++i) {
    EXPECT_NEAR(graph_probs.at(i, 1), fast[static_cast<size_t>(i)], 1e-5f)
        << "cell " << i;
  }
}

TEST(InferenceEngineTest, MemoizedBitIdenticalToUnmemoized) {
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));
  model.CalibrateBatchNorm(ds);

  InferenceOptions memo_on;
  memo_on.memoize = true;
  InferenceOptions memo_off;
  memo_off.memoize = false;
  for (const int eval_batch : {7, 256}) {
    memo_on.eval_batch = eval_batch;
    memo_off.eval_batch = eval_batch;
    InferenceEngine a(model, memo_on);
    InferenceEngine b(model, memo_off);
    std::vector<float> pa;
    std::vector<float> pb;
    a.PredictProbs(ds, {}, &pa);
    b.PredictProbs(ds, {}, &pb);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i], pb[i]) << "cell " << i << " batch " << eval_batch;
    }
    EXPECT_GT(a.stats().dedup_factor, 1.5);
    EXPECT_LT(a.stats().unique_cells, a.stats().cells);
    EXPECT_EQ(b.stats().unique_cells, b.stats().cells);
  }
}

TEST(InferenceEngineTest, BitIdenticalAcrossThreadCounts) {
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));
  model.CalibrateBatchNorm(ds);

  for (const bool memoize : {true, false}) {
    InferenceOptions options;
    options.eval_batch = 7;  // many batches, so sharding actually happens
    options.memoize = memoize;
    InferenceEngine reference(model, options);
    std::vector<float> expected;
    reference.PredictProbs(ds, {}, &expected);

    for (const int threads : {0, 1, 4}) {
      InferenceOptions threaded = options;
      threaded.threads = threads;
      InferenceEngine engine(model, threaded);
      std::vector<float> got;
      engine.PredictProbs(ds, {}, &got);
      ASSERT_EQ(expected.size(), got.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], got[i])
            << "cell " << i << " threads " << threads << " memo " << memoize;
      }
    }

    // External pool path (what PredictDataset hands in).
    ThreadPool pool(3);
    InferenceEngine pooled(model, options, &pool);
    std::vector<float> got;
    pooled.PredictProbs(ds, {}, &got);
    ASSERT_EQ(expected.size(), got.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], got[i]) << "cell " << i << " memo " << memoize;
    }
  }
}

TEST(InferenceEngineTest, DuplicateCellsGetIdenticalPredictions) {
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));
  model.CalibrateBatchNorm(ds);

  InferenceEngine engine(model);
  std::vector<float> p;
  engine.PredictProbs(ds, {}, &p);
  for (int64_t a = 0; a < ds.num_cells(); ++a) {
    for (int64_t b = a + 1; b < ds.num_cells(); ++b) {
      if (ds.CellContentEquals(a, b)) {
        EXPECT_EQ(p[static_cast<size_t>(a)], p[static_cast<size_t>(b)]);
      }
    }
  }
}

TEST(InferenceEngineTest, IndexSubsetAndStats) {
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));
  model.CalibrateBatchNorm(ds);

  InferenceEngine full(model);
  std::vector<float> p_all;
  full.PredictProbs(ds, {}, &p_all);
  EXPECT_EQ(full.stats().cells, ds.num_cells());
  EXPECT_EQ(full.stats().rnn_steps_dense,
            ds.num_cells() * ds.max_len * 2);  // bidirectional
  EXPECT_GT(full.stats().batches, 0);

  // Cells 0/1/2 are the three attributes of row 0 — distinct content by
  // attribute id even when the strings repeat.
  std::vector<int64_t> subset = {0, 1, 2, 1, 0};
  InferenceEngine part(model);
  std::vector<float> p_sub;
  part.PredictProbs(ds, subset, &p_sub);
  ASSERT_EQ(p_sub.size(), subset.size());
  for (size_t k = 0; k < subset.size(); ++k) {
    EXPECT_EQ(p_sub[k], p_all[static_cast<size_t>(subset[k])]);
  }
  EXPECT_EQ(part.stats().cells, 5);
  EXPECT_EQ(part.stats().unique_cells, 3);
}

TEST(InferenceEngineTest, BucketedIsInvariantToMemoization) {
  // Bucketing is approximate w.r.t. the full-padding sweep, but within the
  // bucketed mode results must still be a pure function of cell content:
  // memoize on/off and any thread count give identical bits.
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  ErrorDetectionModel model(SmallConfig(ds));
  model.CalibrateBatchNorm(ds);

  InferenceOptions base;
  base.bucketed = true;
  base.bucket_quantum = 4;
  base.eval_batch = 7;
  InferenceEngine reference(model, base);
  std::vector<float> expected;
  reference.PredictProbs(ds, {}, &expected);
  EXPECT_LT(reference.stats().rnn_steps, reference.stats().rnn_steps_dense);

  for (const bool memoize : {true, false}) {
    for (const int threads : {0, 4}) {
      InferenceOptions options = base;
      options.memoize = memoize;
      options.threads = threads;
      InferenceEngine engine(model, options);
      std::vector<float> got;
      engine.PredictProbs(ds, {}, &got);
      ASSERT_EQ(expected.size(), got.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], got[i])
            << "cell " << i << " memo " << memoize << " threads " << threads;
      }
    }
  }
}

TEST(InferenceEngineTest, CalibrateMemoizedMatchesReference) {
  const data::EncodedDataset ds = DuplicateHeavyDataset();
  const ModelConfig config = SmallConfig(ds);

  ErrorDetectionModel reference(config);
  reference.CalibrateBatchNorm(ds);
  ErrorDetectionModel memoized(config);  // same seed -> same weights
  CalibrateBatchNormMemoized(&memoized, ds);

  const BatchInput batch = MakeBatch(ds, AllIndices(ds));
  std::vector<float> p_ref;
  reference.PredictProbs(batch, &p_ref);
  std::vector<float> p_memo;
  memoized.PredictProbs(batch, &p_memo);
  ASSERT_EQ(p_ref.size(), p_memo.size());
  for (size_t i = 0; i < p_ref.size(); ++i) {
    EXPECT_NEAR(p_ref[i], p_memo[i], 1e-5f) << "cell " << i;
  }
}

/// Bit-parity of opt-in bucketed inference on the six paper generators:
/// the pad-prefix warm start and pad-tail completion make the bucketed
/// sweep EXACT, so every per-cell probability must match the full-padding
/// sweep bit for bit — on any weights (no training needed).
TEST(BucketedInferenceTest, BitParityOnAllSixGenerators) {
  int64_t steps_saved = 0;
  for (const auto& spec : datagen::AllDatasetSpecs()) {
    datagen::GenOptions gen;
    gen.scale = 0.08;
    gen.seed = 7;
    auto pair = datagen::MakeDataset(spec.name, gen);
    ASSERT_TRUE(pair.ok()) << spec.name;
    auto frame = data::PrepareData(pair->dirty, pair->clean);
    ASSERT_TRUE(frame.ok()) << spec.name;
    const data::CharIndex chars = data::CharIndex::Build(*frame);
    const data::EncodedDataset all = data::EncodeCells(*frame, chars);

    ModelConfig config;
    config.vocab = all.vocab;
    config.max_len = all.max_len;
    config.n_attrs = all.n_attrs;
    config.char_emb_dim = 8;
    config.units = 12;
    config.enriched = true;
    config.seed = 21;
    ErrorDetectionModel model(config);
    model.CalibrateBatchNorm(all);

    InferenceOptions padded;
    InferenceOptions bucketed;
    bucketed.bucketed = true;
    InferenceEngine engine_padded(model, padded);
    InferenceEngine engine_bucketed(model, bucketed);

    std::vector<float> p_padded;
    std::vector<float> p_bucketed;
    engine_padded.PredictProbs(all, {}, &p_padded);
    engine_bucketed.PredictProbs(all, {}, &p_bucketed);
    ASSERT_EQ(p_padded.size(), p_bucketed.size()) << spec.name;
    for (size_t i = 0; i < p_padded.size(); ++i) {
      ASSERT_EQ(p_padded[i], p_bucketed[i]) << spec.name << " cell " << i;
    }
    EXPECT_EQ(engine_padded.Accuracy(all, {}), engine_bucketed.Accuracy(all, {}))
        << spec.name;
    steps_saved += engine_padded.stats().rnn_steps -
                   engine_bucketed.stats().rnn_steps;
  }
  // Across the six generators, bucketing must actually shorten the sweep.
  EXPECT_GT(steps_saved, 0);
}

}  // namespace
}  // namespace birnn::core
