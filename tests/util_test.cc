#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  BIRNN_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyUnitMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t x : sample) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// ------------------------------------------------------------------- Stats

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, SampleStdDev) {
  EXPECT_DOUBLE_EQ(SampleStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({5.0}), 0.0);
  // Known value: sd of {2,4,4,4,5,5,7,9} with n-1 is ~2.138.
  EXPECT_NEAR(SampleStdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
}

TEST(StatsTest, PopulationStdDev) {
  EXPECT_NEAR(PopulationStdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(StatsTest, ConfidenceInterval) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const double expected = 1.96 * SampleStdDev(xs) / 2.0;
  EXPECT_NEAR(ConfidenceInterval95(xs), expected, 1e-12);
}

TEST(StatsTest, SummarizeAllFields) {
  Summary s = Summarize({1.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(StatsTest, EmptyInputIsAllZero) {
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
  EXPECT_DOUBLE_EQ(Max({}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(ConfidenceInterval95({}), 0.0);
  const Summary s = Summarize({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_EQ(s.n, 0u);
}

TEST(StatsTest, SingleSampleHasNoSpread) {
  // n < 2: spread statistics are defined to be 0, not NaN.
  EXPECT_DOUBLE_EQ(ConfidenceInterval95({7.0}), 0.0);
  const Summary s = Summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(StatsTest, SummarizeMatchesPiecewiseFunctions) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, Mean(xs));
  EXPECT_DOUBLE_EQ(s.stddev, SampleStdDev(xs));
  EXPECT_DOUBLE_EQ(s.ci95, ConfidenceInterval95(xs));
  EXPECT_DOUBLE_EQ(s.min, Min(xs));
  EXPECT_DOUBLE_EQ(s.max, Max(xs));
  EXPECT_EQ(s.n, xs.size());
}

TEST(StatsTest, MinMaxWithNegatives) {
  const std::vector<double> xs{-3.0, 0.0, 2.5};
  EXPECT_DOUBLE_EQ(Min(xs), -3.0);
  EXPECT_DOUBLE_EQ(Max(xs), 2.5);
}

// ------------------------------------------------------------- StringUtil

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimLeft("  a b "), "a b ");
  EXPECT_EQ(TrimRight("  a b "), "  a b");
  EXPECT_EQ(Trim("\t a b \r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC9-x"), "abc9-x");
  EXPECT_EQ(ToUpper("AbC9-x"), "ABC9-X");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "el"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-12"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2 ", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("12a", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "ab"), 2u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("Birmingham", "Birmingxam"), 1u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(0.851, 2), "0.85");
  EXPECT_EQ(FormatFixed(1.0, 2), "1.00");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

// ------------------------------------------------------------------- Flags

TEST(FlagsTest, DefaultsAndParse) {
  FlagSet flags;
  flags.AddInt("reps", 3, "repetitions");
  flags.AddDouble("scale", 1.0, "scale");
  flags.AddString("dataset", "beers", "dataset");
  flags.AddBool("verbose", false, "verbose");

  const char* argv[] = {"prog", "--reps=7", "--scale", "0.5", "--verbose",
                        "--dataset=tax"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("reps"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 0.5);
  EXPECT_EQ(flags.GetString("dataset"), "tax");
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags;
  flags.AddInt("reps", 3, "repetitions");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, BadIntFails) {
  FlagSet flags;
  flags.AddInt("reps", 3, "repetitions");
  const char* argv[] = {"prog", "--reps=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, HelpRequested) {
  FlagSet flags;
  flags.AddInt("reps", 3, "repetitions");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage("prog").find("--reps"), std::string::npos);
}

TEST(FlagsTest, PositionalArguments) {
  FlagSet flags;
  flags.AddInt("reps", 3, "repetitions");
  const char* argv[] = {"prog", "file1.csv", "--reps=2", "file2.csv"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"file1.csv", "file2.csv"}));
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

TEST(StopwatchTest, ElapsedIsMonotone) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(StopwatchTest, MeasuresRealWork) {
  Stopwatch sw;
  // Busy-spin until the clock provably advances.
  while (sw.ElapsedSeconds() <= 0.0) {
  }
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

TEST(StopwatchTest, RestartResetsElapsed) {
  Stopwatch sw;
  while (sw.ElapsedSeconds() < 1e-3) {
  }
  const double before = sw.ElapsedSeconds();
  sw.Restart();
  const double after = sw.ElapsedSeconds();
  EXPECT_LT(after, before);
}

TEST(StopwatchTest, MillisTrackSeconds) {
  Stopwatch sw;
  const double seconds = sw.ElapsedSeconds();
  const double millis = sw.ElapsedMillis();
  // Millis read later, so it can only be larger; both measure the same
  // start point at a fixed 1000x scale.
  EXPECT_GE(millis, seconds * 1000.0);
  EXPECT_LE(millis, (seconds + 1.0) * 1000.0);
}

TEST(StopwatchTest, ThreadCpuSecondsAdvancesWithWork) {
  const double before = ThreadCpuSeconds();
  EXPECT_GE(before, 0.0);
  // Burn measurable CPU; volatile keeps the loop from folding away.
  volatile double sink = 0.0;
  while (ThreadCpuSeconds() - before < 1e-3) {
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(ThreadCpuSeconds(), before);
}

}  // namespace
}  // namespace birnn
