// Edge-case coverage for the v1 checkpoint format (magic + version sentinel
// + FNV-1a payload checksum) and its strict load contract: truncation,
// corruption, shape/coverage mismatches and v0 back-compat.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/init.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace birnn::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// A v0 checkpoint image: magic, u32 entry count, entries — no version byte,
// no checksum. This is the format older checkpoints on disk still have.
std::string MakeV0Image(
    const std::vector<std::pair<std::string, std::vector<float>>>& entries) {
  std::string image = "BRNNCKPT";
  AppendU32(&image, static_cast<uint32_t>(entries.size()));
  for (const auto& [name, values] : entries) {
    AppendU32(&image, static_cast<uint32_t>(name.size()));
    image.append(name);
    AppendU32(&image, 1);  // rank
    AppendU32(&image, static_cast<uint32_t>(values.size()));
    image.append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(float));
  }
  return image;
}

TEST(SerializeV1Test, RoundtripIsBitExact) {
  Rng rng(7);
  Parameter a("enc/w", Tensor(5, 3));
  Parameter b("enc/b", Tensor(std::vector<int>{3}));
  NormalInit(&a.value, 1.0f, &rng);
  NormalInit(&b.value, 1.0f, &rng);
  // Plant awkward values: negative zero, denormal, huge.
  a.value[0] = -0.0f;
  a.value[1] = 1e-40f;
  b.value[0] = 3.0e38f;
  const Tensor a_orig = a.value;
  const Tensor b_orig = b.value;

  const std::string path = TempPath("birnn_ser_v1_roundtrip.bin");
  ASSERT_TRUE(SaveParameters({&a, &b}, path).ok());
  a.value.Fill(0.0f);
  b.value.Fill(0.0f);
  ASSERT_TRUE(LoadParameters(path, {&a, &b}).ok());
  EXPECT_EQ(0, std::memcmp(a.value.data(), a_orig.data(),
                           a_orig.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(b.value.data(), b_orig.data(),
                           b_orig.size() * sizeof(float)));
  std::remove(path.c_str());
}

TEST(SerializeV1Test, FileStartsWithMagicAndSentinel) {
  Parameter a("a", Tensor(1, 1));
  const std::string path = TempPath("birnn_ser_v1_header.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  const std::string image = ReadFile(path);
  ASSERT_GE(image.size(), 13u);
  EXPECT_EQ(image.substr(0, 8), "BRNNCKPT");
  uint32_t sentinel = 0;
  std::memcpy(&sentinel, image.data() + 8, sizeof(sentinel));
  EXPECT_EQ(sentinel, 0xFFFFFFFFu);
  EXPECT_EQ(static_cast<uint8_t>(image[12]), 1);  // format version
  std::remove(path.c_str());
}

TEST(SerializeV1Test, TruncatedFileFails) {
  Rng rng(8);
  Parameter a("a", Tensor(4, 4));
  NormalInit(&a.value, 1.0f, &rng);
  const std::string path = TempPath("birnn_ser_v1_trunc.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  const std::string image = ReadFile(path);

  // Any strict prefix must fail to load — never crash, never half-load.
  for (const size_t keep :
       {image.size() - 1, image.size() - 8, image.size() / 2, size_t{13},
        size_t{10}, size_t{4}, size_t{0}}) {
    WriteFile(path, image.substr(0, keep));
    Parameter fresh("a", Tensor(4, 4));
    EXPECT_FALSE(LoadParameters(path, {&fresh}).ok()) << "prefix " << keep;
  }
  std::remove(path.c_str());
}

TEST(SerializeV1Test, CorruptedPayloadFailsChecksum) {
  Rng rng(9);
  Parameter a("a", Tensor(8, 8));
  NormalInit(&a.value, 1.0f, &rng);
  const std::string path = TempPath("birnn_ser_v1_corrupt.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  std::string image = ReadFile(path);

  // Flip one bit in the middle of the tensor data.
  image[image.size() / 2] ^= 0x01;
  WriteFile(path, image);
  Parameter fresh("a", Tensor(8, 8));
  const Status st = LoadParameters(path, {&fresh});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st.message();
  std::remove(path.c_str());
}

TEST(SerializeV1Test, CorruptedChecksumTrailerFails) {
  Parameter a("a", Tensor(2, 2));
  const std::string path = TempPath("birnn_ser_v1_badsum.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  std::string image = ReadFile(path);
  image[image.size() - 3] ^= 0xFF;  // inside the trailing u64 checksum
  WriteFile(path, image);
  Parameter fresh("a", Tensor(2, 2));
  EXPECT_EQ(LoadParameters(path, {&fresh}).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(SerializeV1Test, WrongShapeFails) {
  Parameter a("a", Tensor(2, 3));
  const std::string path = TempPath("birnn_ser_v1_shape.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter wrong("a", Tensor(3, 2));
  EXPECT_EQ(LoadParameters(path, {&wrong}).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeV1Test, ExtraEntriesFail) {
  Parameter a("a", Tensor(1, 2));
  Parameter b("b", Tensor(1, 2));
  Parameter c("c", Tensor(1, 2));
  const std::string path = TempPath("birnn_ser_v1_extra.bin");
  ASSERT_TRUE(SaveParameters({&a, &b, &c}, path).ok());
  // Loading into a strict subset must fail loudly — silent partial loads
  // hide a model/checkpoint mismatch.
  Parameter only_a("a", Tensor(1, 2));
  const Status st = LoadParameters(path, {&only_a});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("extra"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("b"), std::string::npos) << st.message();
  std::remove(path.c_str());
}

TEST(SerializeV1Test, UnsupportedVersionFails) {
  std::string image = "BRNNCKPT";
  AppendU32(&image, 0xFFFFFFFFu);
  image.push_back(static_cast<char>(3));  // a future format version
  const std::string path = TempPath("birnn_ser_v1_future.bin");
  WriteFile(path, image);
  Parameter a("a", Tensor(1, 1));
  const Status st = LoadParameters(path, {&a});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("version"), std::string::npos) << st.message();
  std::remove(path.c_str());
}

TEST(SerializeV0CompatTest, V0CheckpointStillLoads) {
  const std::vector<float> w = {1.5f, -2.25f, 0.125f};
  const std::string path = TempPath("birnn_ser_v0_ok.bin");
  WriteFile(path, MakeV0Image({{"layer/w", w}}));

  Parameter p("layer/w", Tensor(std::vector<int>{3}));
  ASSERT_TRUE(LoadParameters(path, {&p}).ok());
  EXPECT_EQ(0, std::memcmp(p.value.data(), w.data(), w.size() * sizeof(float)));
  std::remove(path.c_str());
}

TEST(SerializeV0CompatTest, V0DuplicateEntryFails) {
  const std::vector<float> w = {1.0f};
  const std::string path = TempPath("birnn_ser_v0_dup.bin");
  WriteFile(path, MakeV0Image({{"w", w}, {"w", w}}));
  Parameter p("w", Tensor(std::vector<int>{1}));
  EXPECT_EQ(LoadParameters(path, {&p}).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeV0CompatTest, V0ExtraEntryFails) {
  const std::vector<float> w = {1.0f};
  const std::string path = TempPath("birnn_ser_v0_extra.bin");
  WriteFile(path, MakeV0Image({{"w", w}, {"stale", w}}));
  Parameter p("w", Tensor(std::vector<int>{1}));
  const Status st = LoadParameters(path, {&p});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("stale"), std::string::npos) << st.message();
  std::remove(path.c_str());
}

TEST(SerializeV0CompatTest, V0TrailingGarbageFails) {
  const std::vector<float> w = {1.0f};
  const std::string path = TempPath("birnn_ser_v0_trail.bin");
  WriteFile(path, MakeV0Image({{"w", w}}) + "junk");
  Parameter p("w", Tensor(std::vector<int>{1}));
  EXPECT_FALSE(LoadParameters(path, {&p}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace birnn::nn
