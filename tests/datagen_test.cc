#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/prepare.h"
#include "datagen/datasets.h"
#include "datagen/injector.h"
#include "datagen/stats.h"
#include "datagen/vocab.h"

namespace birnn::datagen {
namespace {

// ----------------------------------------------------- corruption primitives

TEST(InjectorPrimitivesTest, CorruptMissing) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::string out = CorruptMissing("value", &rng);
    EXPECT_TRUE(out.empty() || out == "NaN");
  }
}

TEST(InjectorPrimitivesTest, CorruptTypoXReplacesLetter) {
  Rng rng(2);
  const std::string out = CorruptTypoX("heart", &rng);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_NE(out, "heart");
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(InjectorPrimitivesTest, CorruptTypoXOnDigitsAppends) {
  Rng rng(3);
  EXPECT_EQ(CorruptTypoX("12345", &rng), "12345x");
}

TEST(InjectorPrimitivesTest, CorruptTypoChangesValue) {
  Rng rng(4);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (CorruptTypo("hospital", &rng) != "hospital") ++changed;
  }
  EXPECT_GT(changed, 40);  // transpose of equal chars can be a no-op
}

TEST(InjectorPrimitivesTest, ThousandsSeparators) {
  EXPECT_EQ(CorruptThousandsSeparators("379998"), "379,998");
  EXPECT_EQ(CorruptThousandsSeparators("1234567"), "1,234,567");
  EXPECT_EQ(CorruptThousandsSeparators("123"), "123");  // too short
  EXPECT_EQ(CorruptThousandsSeparators("abc"), "abc");
  EXPECT_EQ(CorruptThousandsSeparators("x12345y"), "x12,345y");
}

TEST(InjectorPrimitivesTest, SuffixAndZeros) {
  EXPECT_EQ(CorruptAppendSuffix("12.0", " oz"), "12.0 oz");
  EXPECT_EQ(CorruptStripLeadingZeros("01907"), "1907");
  EXPECT_EQ(CorruptStripLeadingZeros("0001"), "1");
  EXPECT_EQ(CorruptStripLeadingZeros("100"), "100");
  EXPECT_EQ(CorruptAppendDecimal("7"), "7.0");
  EXPECT_EQ(CorruptAppendDecimal("7.5"), "7.5");
}

TEST(InjectorPrimitivesTest, SwapDashParts) {
  EXPECT_EQ(CorruptSwapDashParts("22-Mar"), "Mar-22");
  EXPECT_EQ(CorruptSwapDashParts("Mar-22"), "22-Mar");
  EXPECT_EQ(CorruptSwapDashParts("nodash"), "nodash");
  EXPECT_EQ(CorruptSwapDashParts("-x"), "-x");
}

TEST(InjectorPrimitivesTest, PrependDateFormat) {
  Rng rng(5);
  const std::string out = CorruptPrependDate("6:55 a.m.", &rng);
  // "MM/DD/2011 6:55 a.m."
  EXPECT_EQ(out.size(), std::string("12/02/2011 6:55 a.m.").size());
  EXPECT_NE(out.find("/2011 6:55 a.m."), std::string::npos);
}

TEST(InjectorPrimitivesTest, ShiftTimeMinutesStaysValid) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const std::string out = CorruptShiftTimeMinutes("8:42 a.m.", &rng);
    EXPECT_NE(out, "8:42 a.m.");
    // Still parses as H:MM.
    const size_t colon = out.find(':');
    ASSERT_NE(colon, std::string::npos);
    const int minute = (out[colon + 1] - '0') * 10 + (out[colon + 2] - '0');
    EXPECT_GE(minute, 0);
    EXPECT_LT(minute, 60);
    EXPECT_NE(out.find("a.m."), std::string::npos);
  }
}

TEST(InjectorPrimitivesTest, ShiftTimeLeavesNonTimesAlone) {
  Rng rng(7);
  EXPECT_EQ(CorruptShiftTimeMinutes("not a time", &rng), "not a time");
  EXPECT_EQ(CorruptShiftTimeMinutes("", &rng), "");
}

TEST(InjectorPrimitivesTest, SwapDomainValuePicksDifferent) {
  Rng rng(8);
  const std::vector<std::string> domain{"CA", "TX", "NY"};
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(CorruptSwapDomainValue("CA", domain, &rng), "CA");
  }
  // Degenerate single-value domain still forces a change.
  EXPECT_NE(CorruptSwapDomainValue("CA", {"CA"}, &rng), "CA");
}

// ------------------------------------------------------------ InjectErrors

TEST(InjectErrorsTest, HitsTargetRate) {
  Rng rng(9);
  data::Table clean(std::vector<std::string>{"a", "b"});
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        clean.AppendRow({"value" + std::to_string(i), "fixed"}).ok());
  }
  std::vector<ColumnCorruption> corruptions;
  corruptions.push_back({0, 1.0, ErrorType::kTypo,
                         [](const std::string& v, int, Rng* r) {
                           return CorruptTypo(v, r);
                         }});
  const data::Table dirty = InjectErrors(clean, corruptions, 0.10, &rng);
  int64_t diff = 0;
  for (int r = 0; r < clean.num_rows(); ++r) {
    for (int c = 0; c < clean.num_columns(); ++c) {
      if (dirty.cell(r, c) != clean.cell(r, c)) ++diff;
    }
  }
  const double rate = static_cast<double>(diff) / (500.0 * 2.0);
  EXPECT_NEAR(rate, 0.10, 0.01);
}

TEST(InjectErrorsTest, OnlyTargetColumnTouched) {
  Rng rng(10);
  data::Table clean(std::vector<std::string>{"a", "b"});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(clean.AppendRow({"aaaa", "bbbb"}).ok());
  }
  std::vector<ColumnCorruption> corruptions;
  corruptions.push_back({1, 1.0, ErrorType::kTypo,
                         [](const std::string& v, int, Rng* r) {
                           return CorruptTypo(v, r);
                         }});
  const data::Table dirty = InjectErrors(clean, corruptions, 0.05, &rng);
  for (int r = 0; r < clean.num_rows(); ++r) {
    EXPECT_EQ(dirty.cell(r, 0), clean.cell(r, 0));
  }
}

// ---------------------------------------------------------------- datasets

struct DatasetCase {
  std::string name;
};

class DatasetGenTest : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetGenTest, MatchesSpec) {
  const auto spec_or = FindDatasetSpec(GetParam().name);
  ASSERT_TRUE(spec_or.ok());
  const DatasetSpec& spec = *spec_or;

  GenOptions options;
  // Scale so each dataset lands around ~600 rows for the test.
  options.scale = 600.0 / spec.paper_rows;
  options.seed = 21;
  auto pair_or = MakeDataset(spec.name, options);
  ASSERT_TRUE(pair_or.ok());
  const DatasetPair& pair = *pair_or;

  EXPECT_EQ(pair.name, spec.name);
  EXPECT_EQ(pair.clean.num_columns(), spec.paper_cols);
  EXPECT_EQ(pair.dirty.num_columns(), spec.paper_cols);
  EXPECT_EQ(pair.clean.num_rows(), pair.dirty.num_rows());
  EXPECT_GT(pair.clean.num_rows(), 400);

  const DatasetStats stats = ComputeStats(pair);
  EXPECT_NEAR(stats.error_rate, spec.paper_error_rate,
              spec.paper_error_rate * 0.25 + 0.005)
      << "error rate off for " << spec.name;
  EXPECT_GT(stats.distinct_chars, 15);
}

TEST_P(DatasetGenTest, DeterministicPerSeed) {
  GenOptions options;
  options.scale = 0.05;
  options.seed = 33;
  auto a = MakeDataset(GetParam().name, options);
  auto b = MakeDataset(GetParam().name, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->clean.Equals(b->clean));
  EXPECT_TRUE(a->dirty.Equals(b->dirty));
  options.seed = 34;
  auto c = MakeDataset(GetParam().name, options);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->dirty.Equals(c->dirty));
}

TEST_P(DatasetGenTest, PreparesCleanly) {
  GenOptions options;
  options.scale = 0.05;
  auto pair = MakeDataset(GetParam().name, options);
  ASSERT_TRUE(pair.ok());
  auto frame = data::PrepareData(pair->dirty, pair->clean);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_tuples(), pair->dirty.num_rows());
  EXPECT_GT(frame->ErrorRate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetGenTest,
    ::testing::Values(DatasetCase{"beers"}, DatasetCase{"flights"},
                      DatasetCase{"hospital"}, DatasetCase{"movies"},
                      DatasetCase{"rayyan"}, DatasetCase{"tax"}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      return info.param.name;
    });

TEST(DatasetGenTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDataset("nope", {}).ok());
  EXPECT_FALSE(FindDatasetSpec("nope").ok());
}

TEST(DatasetGenTest, SpecsCoverTableTwo) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "beers");
  EXPECT_EQ(specs[5].name, "tax");
  EXPECT_EQ(specs[5].paper_rows, 200000);
  EXPECT_DOUBLE_EQ(specs[1].paper_error_rate, 0.30);
}

TEST(DatasetSignatureTest, HospitalTyposUseX) {
  GenOptions options;
  options.scale = 0.5;
  const DatasetPair pair = MakeHospital(options);
  // Find a corrupted textual cell and verify the trademark 'x' signature.
  int with_x = 0;
  int textual_typos = 0;
  const int name_col = pair.clean.ColumnIndex("hospital_name");
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    if (pair.dirty.cell(r, name_col) != pair.clean.cell(r, name_col)) {
      ++textual_typos;
      if (pair.dirty.cell(r, name_col).find('x') != std::string::npos) {
        ++with_x;
      }
    }
  }
  if (textual_typos > 0) {
    EXPECT_EQ(with_x, textual_typos);
  }
}

TEST(DatasetSignatureTest, BeersOuncesGetUnits) {
  GenOptions options;
  options.scale = 0.5;
  const DatasetPair pair = MakeBeers(options);
  const int col = pair.clean.ColumnIndex("ounces");
  bool found_oz = false;
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    if (pair.dirty.cell(r, col) != pair.clean.cell(r, col)) {
      EXPECT_EQ(pair.dirty.cell(r, col), pair.clean.cell(r, col) + " oz");
      found_oz = true;
    }
  }
  EXPECT_TRUE(found_oz);
}

TEST(DatasetSignatureTest, FlightsSourcesShareCleanTimes) {
  GenOptions options;
  options.scale = 0.2;
  const DatasetPair pair = MakeFlights(options);
  // Group clean rows by flight id: all sources must agree on clean times.
  const int flight_col = pair.clean.ColumnIndex("flight");
  const int dep_col = pair.clean.ColumnIndex("sched_dep_time");
  std::map<std::string, std::set<std::string>> times;
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    times[pair.clean.cell(r, flight_col)].insert(pair.clean.cell(r, dep_col));
  }
  for (const auto& [flight, deps] : times) {
    EXPECT_EQ(deps.size(), 1u) << flight;
  }
}

TEST(DatasetSignatureTest, TaxZipLeadingZeroStripped) {
  GenOptions options;
  options.scale = 0.05;
  const DatasetPair pair = MakeTax(options);
  const int zip = pair.clean.ColumnIndex("zip");
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    if (pair.dirty.cell(r, zip) != pair.clean.cell(r, zip)) {
      // Stripped zeros: dirty is a suffix of clean.
      const std::string& d = pair.dirty.cell(r, zip);
      const std::string& c = pair.clean.cell(r, zip);
      EXPECT_TRUE(c.size() > d.size() &&
                  c.substr(c.size() - d.size()) == d)
          << c << " -> " << d;
    }
  }
}

TEST(VocabTest, CityStateMappingIsFunctional) {
  std::map<std::string, std::string> mapping;
  for (const auto& cs : CityStates()) {
    auto [it, inserted] = mapping.emplace(cs.city, cs.state);
    EXPECT_TRUE(inserted || it->second == cs.state)
        << "city " << cs.city << " maps to two states";
  }
  EXPECT_GE(mapping.size(), 40u);
}

TEST(VocabTest, RandomHelpers) {
  Rng rng(11);
  EXPECT_EQ(RandomDigits(5, &rng).size(), 5u);
  const std::string time = RandomClockTime(&rng);
  EXPECT_NE(time.find(':'), std::string::npos);
  EXPECT_TRUE(time.find("a.m.") != std::string::npos ||
              time.find("p.m.") != std::string::npos);
  const std::string phrase = RandomPhrase(MovieTitleWords(), 3, &rng);
  EXPECT_FALSE(phrase.empty());
}

}  // namespace
}  // namespace birnn::datagen
