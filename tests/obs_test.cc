#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace birnn::obs {
namespace {

/// Scrape helper: the aggregated snapshot entry for `name`, or nullopt.
const MetricSnapshot* Find(const std::vector<MetricSnapshot>& snapshot,
                           const std::string& name) {
  for (const MetricSnapshot& m : snapshot) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// ------------------------------------------------------------------ buckets

TEST(BucketsTest, BoundsAreExponential) {
  EXPECT_DOUBLE_EQ(BucketUpperBound(21), 1.0);
  EXPECT_DOUBLE_EQ(BucketUpperBound(22), 2.0);
  EXPECT_DOUBLE_EQ(BucketUpperBound(20), 0.5);
  EXPECT_DOUBLE_EQ(BucketUpperBound(0), std::ldexp(1.0, -21));
  EXPECT_TRUE(std::isinf(BucketUpperBound(kHistogramBuckets - 1)));
}

TEST(BucketsTest, IndexInvertsBounds) {
  // A bucket's upper bound is the largest value the bucket holds.
  for (int i = 0; i < kHistogramBuckets - 1; ++i) {
    EXPECT_EQ(BucketIndex(BucketUpperBound(i)), i) << "bound of bucket " << i;
    EXPECT_EQ(BucketIndex(BucketUpperBound(i) * 1.001), i + 1);
  }
  EXPECT_EQ(BucketIndex(0.0), 0);
  EXPECT_EQ(BucketIndex(-3.0), 0);
  EXPECT_EQ(BucketIndex(1e300), kHistogramBuckets - 1);
}

// ----------------------------------------------------------------- counters

TEST(CounterTest, AddAndValue) {
  Counter c("test/counter_add");
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
}

TEST(CounterTest, ConcurrentWritersSumExactly) {
  Counter c("test/counter_mt");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kAddsPerThread);
}

// ------------------------------------------------------------------- gauges

TEST(GaugeTest, SetAddKeepMax) {
  Gauge g("test/gauge");
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.Value(), 5.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(g.Value(), 3.0);
  g.KeepMax(10.0);
  EXPECT_DOUBLE_EQ(g.Value(), 10.0);
  g.KeepMax(1.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.Value(), 10.0);
}

TEST(GaugeTest, ConcurrentAddsBalance) {
  Gauge g("test/gauge_mt");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 5000; ++i) {
        g.Add(3.0);
        g.Add(-3.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

// --------------------------------------------------------------- histograms

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h("test/hist_empty");
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 0);
  EXPECT_DOUBLE_EQ(d.sum, 0.0);
  EXPECT_DOUBLE_EQ(d.min, 0.0);
  EXPECT_DOUBLE_EQ(d.max, 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  Histogram h("test/hist_single");
  h.Record(0.125);
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 1);
  EXPECT_DOUBLE_EQ(d.sum, 0.125);
  EXPECT_DOUBLE_EQ(d.min, 0.125);
  EXPECT_DOUBLE_EQ(d.max, 0.125);
  // One sample: every quantile is that sample (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 0.125);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketed) {
  Histogram h("test/hist_mono");
  for (int i = 1; i <= 1000; ++i) h.Record(i * 0.001);  // 1ms..1s
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 1000);
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double est = d.Quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;
    EXPECT_GE(est, d.min);
    EXPECT_LE(est, d.max);
    prev = est;
  }
  // p50 of uniform 0.001..1.0 is ~0.5; the bucket estimate may be up to one
  // power of two high.
  EXPECT_GE(d.Quantile(0.5), 0.5);
  EXPECT_LE(d.Quantile(0.5), 1.0);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  HistogramData a, b;
  {
    Histogram h("test/hist_merge_a");
    h.Record(1.0);
    h.Record(2.0);
    a = h.Snapshot();
  }
  {
    Histogram h("test/hist_merge_b");
    h.Record(0.25);
    b = h.Snapshot();
  }
  a.Merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.sum, 3.25);
  EXPECT_DOUBLE_EQ(a.min, 0.25);
  EXPECT_DOUBLE_EQ(a.max, 2.0);

  HistogramData empty;
  a.Merge(empty);  // merging empty changes nothing
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.min, 0.25);

  HistogramData into_empty;
  into_empty.Merge(a);
  EXPECT_EQ(into_empty.count, 3);
  EXPECT_DOUBLE_EQ(into_empty.min, 0.25);
  EXPECT_DOUBLE_EQ(into_empty.max, 2.0);
}

TEST(HistogramTest, ConcurrentWritersCountExactly) {
  Histogram h("test/hist_mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(0.001 * (t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(d.min, 0.001);
  EXPECT_DOUBLE_EQ(d.max, 0.008);
  EXPECT_NEAR(d.sum, 5000 * 0.001 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8), 1e-6);
}

// ----------------------------------------------------------------- registry

TEST(RegistryTest, SameNameMetricsAggregateOnScrape) {
  Counter a("test/agg_counter");
  Counter b("test/agg_counter");
  a.Add(10);
  b.Add(32);
  // Each instance reads its own value...
  EXPECT_EQ(a.Value(), 10);
  EXPECT_EQ(b.Value(), 32);
  // ...while the scrape sees one merged family.
  const auto snapshot = Registry::Get().Snapshot();
  const MetricSnapshot* m = Find(snapshot, "test/agg_counter");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->counter, 42);
}

TEST(RegistryTest, RetiredMetricsRetainTotals) {
  // A component-owned metric dying with its owner must not erase its
  // history from the scrape: totals fold into the registry's retained
  // aggregates (e.g. a serve bench scraping after server shutdown).
  {
    Counter c("test/ephemeral_counter");
    c.Add(7);
  }
  {
    Counter c("test/ephemeral_counter");
    c.Add(5);
    // Live instance reads only itself; the scrape sees dead + live.
    EXPECT_EQ(c.Value(), 5);
    const MetricSnapshot* m =
        Find(Registry::Get().Snapshot(), "test/ephemeral_counter");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->counter, 12);
  }
  const MetricSnapshot* m =
      Find(Registry::Get().Snapshot(), "test/ephemeral_counter");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->counter, 12);
}

TEST(RegistryTest, RetiredHistogramsMergeIntoScrape) {
  {
    Histogram h("test/ephemeral_hist");
    h.Record(1.0);
    h.Record(4.0);
  }
  Histogram h("test/ephemeral_hist");
  h.Record(2.0);
  const MetricSnapshot* m =
      Find(Registry::Get().Snapshot(), "test/ephemeral_hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.count, 3);
  EXPECT_DOUBLE_EQ(m->histogram.sum, 7.0);
  EXPECT_DOUBLE_EQ(m->histogram.min, 1.0);
  EXPECT_DOUBLE_EQ(m->histogram.max, 4.0);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Counter z("test/zzz_sorted");
  Counter a("test/aaa_sorted");
  const auto snapshot = Registry::Get().Snapshot();
  std::string prev;
  for (const MetricSnapshot& m : snapshot) {
    EXPECT_LE(prev, m.name);
    prev = m.name;
  }
}

TEST(RegistryTest, TextExpositionFormat) {
  Counter c("test/expo-counter");
  c.Add(3);
  Histogram h("test/expo_hist");
  h.Record(1.0);
  const std::string text = Registry::Get().TextExposition();
  // Names are sanitized ([a-zA-Z0-9_], birnn_ prefix).
  EXPECT_NE(text.find("# TYPE birnn_test_expo_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("birnn_test_expo_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE birnn_test_expo_hist summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("birnn_test_expo_hist{quantile=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("birnn_test_expo_hist_count 1\n"), std::string::npos);
}

TEST(RegistryTest, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("serve/batcher/cells"),
            "birnn_serve_batcher_cells");
  EXPECT_EQ(SanitizeMetricName("a-b.c"), "birnn_a_b_c");
}

// ------------------------------------------------------------------ tracing

TEST(TraceTest, SpanRecordsDuration) {
  Tracing::Get().Clear();
  const int64_t before = Tracing::Get().EventCount();
  { ScopedSpan span("test/span"); }
  EXPECT_EQ(Tracing::Get().EventCount(), before + 1);
  int tid = -1;
  const auto events = Tracing::Get().ThreadRing(&tid)->Drain();
  ASSERT_GE(tid, 0);
  ASSERT_FALSE(events.empty());
  const TraceEvent& e = events.back();
  EXPECT_STREQ(e.name, "test/span");
  EXPECT_GE(e.ts_ns, 0);
  EXPECT_GE(e.dur_ns, 0);
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  Tracing::Get().Clear();
  { ScopedSpan span("test/json_span"); }
  const std::string json = Tracing::Get().ChromeTraceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"test/json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, RingIsBounded) {
  Tracing::Get().Clear();
  const int64_t n = static_cast<int64_t>(TraceRing::kCapacity) + 100;
  for (int64_t i = 0; i < n; ++i) {
    ScopedSpan span("test/flood");
  }
  const TraceRing* ring = Tracing::Get().ThreadRing(nullptr);
  EXPECT_EQ(ring->Drain().size(), TraceRing::kCapacity);
  EXPECT_GE(ring->dropped(), 100);
}

TEST(TraceTest, ConcurrentSpansFromManyThreads) {
  Tracing::Get().Clear();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("test/mt_span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread has its own ring; nothing dropped, nothing lost.
  EXPECT_GE(Tracing::Get().EventCount(), int64_t{kThreads} * kSpansPerThread);
  const std::string json = Tracing::Get().ChromeTraceJson();
  EXPECT_NE(json.find("test/mt_span"), std::string::npos);
}

// --------------------------------------------------------- runtime disable

TEST(EnabledTest, RuntimeSwitchMutesMacrosAndSpans) {
  ASSERT_TRUE(Enabled());  // default
  SetEnabled(false);
  Tracing::Get().Clear();
  const int64_t before = Tracing::Get().EventCount();
  { ScopedSpan span("test/muted_span"); }
  EXPECT_EQ(Tracing::Get().EventCount(), before);
  // Direct API still records while muted (component-owned stats).
  Counter direct("test/direct_while_muted");
  direct.Add(5);
  EXPECT_EQ(direct.Value(), 5);
  SetEnabled(true);
}

// -------------------------------------------------------------- macro smoke

#if BIRNN_OBS_ENABLED

TEST(MacroTest, MacrosRecordIntoRegistry) {
  OBS_COUNTER_ADD("test/macro_counter", 2);
  OBS_COUNTER_ADD("test/macro_counter", 3);
  OBS_GAUGE_SET("test/macro_gauge", 1.5);
  OBS_HISTOGRAM_RECORD("test/macro_hist", 0.25);
  const auto snapshot = Registry::Get().Snapshot();
  const MetricSnapshot* c = Find(snapshot, "test/macro_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->counter, 5);
  const MetricSnapshot* g = Find(snapshot, "test/macro_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->gauge, 1.5);
  const MetricSnapshot* h = Find(snapshot, "test/macro_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 1);
}

TEST(MacroTest, SpanMacroRecordsEvent) {
  Tracing::Get().Clear();
  const int64_t before = Tracing::Get().EventCount();
  {
    OBS_SPAN("test/macro_span");
  }
  EXPECT_EQ(Tracing::Get().EventCount(), before + 1);
}

#else  // !BIRNN_OBS_ENABLED

TEST(MacroTest, MacrosCompileToNothingWhenOff) {
  // Arguments must be syntactically valid yet never evaluated.
  std::atomic<int> evaluated{0};
  const auto touch = [&evaluated] {
    evaluated.fetch_add(1);
    return 1;
  };
  OBS_COUNTER_ADD("test/off_counter", touch());
  OBS_GAUGE_SET("test/off_gauge", touch());
  OBS_HISTOGRAM_RECORD("test/off_hist", touch());
  OBS_SPAN("test/off_span");
  EXPECT_EQ(evaluated.load(), 0);
  EXPECT_EQ(Find(Registry::Get().Snapshot(), "test/off_counter"), nullptr);
}

#endif  // BIRNN_OBS_ENABLED

// -------------------------------------------------- mixed concurrent smoke

TEST(ObsStressTest, MixedWritersUnderContention) {
  // The TSAN target: 8+ threads hammering one counter, one histogram, one
  // gauge and the span rings at once, racing a scraper.
  Counter counter("test/stress_counter");
  Histogram hist("test/stress_hist");
  Gauge gauge("test/stress_gauge");
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::thread scraper([&stop] {
    while (!stop.load()) {
      (void)Registry::Get().Snapshot();
      (void)Registry::Get().TextExposition();
      (void)Tracing::Get().ChromeTraceJson();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, &gauge] {
      for (int i = 0; i < kIters; ++i) {
        ScopedSpan span("test/stress_span");
        counter.Add(1);
        hist.Record(0.001 * (1 + (i % 7)));
        gauge.Add(1.0);
        gauge.Add(-1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIters);
  EXPECT_EQ(hist.Snapshot().count, int64_t{kThreads} * kIters);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

}  // namespace
}  // namespace birnn::obs
