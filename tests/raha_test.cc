#include <gtest/gtest.h>

#include <set>

#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "raha/cluster.h"
#include "raha/detector.h"
#include "raha/features.h"
#include "raha/strategy.h"

namespace birnn::raha {
namespace {

data::Table TableOf(const std::vector<std::string>& columns,
                    const std::vector<std::vector<std::string>>& rows) {
  data::Table t(columns);
  for (const auto& row : rows) {
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

DetectionMask RunStrategy(const Strategy& strategy, const data::Table& t) {
  DetectionMask mask(static_cast<size_t>(t.num_rows()) * t.num_columns(), 0);
  strategy.Detect(t, &mask);
  return mask;
}

size_t Idx(const data::Table& t, int r, int c) {
  return static_cast<size_t>(r) * t.num_columns() + static_cast<size_t>(c);
}

TEST(NullStrategyTest, FlagsMissingSpellings) {
  const data::Table t = TableOf(
      {"a"}, {{""}, {"NaN"}, {"n/a"}, {"null"}, {"-"}, {"ok"}, {" "}});
  const DetectionMask mask = RunStrategy(NullStrategy(), t);
  EXPECT_EQ(mask[Idx(t, 0, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 1, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 2, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 3, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 4, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 5, 0)], 0);
  EXPECT_EQ(mask[Idx(t, 6, 0)], 1);  // whitespace-only
}

TEST(GaussianOutlierTest, FlagsExtremesAndTypeMismatches) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({std::to_string(100 + i % 5)});
  rows.push_back({"99999"});  // numeric outlier
  rows.push_back({"BER"});    // non-numeric in numeric column
  const data::Table t = TableOf({"zip"}, rows);
  const DetectionMask mask = RunStrategy(GaussianOutlierStrategy(3.0), t);
  EXPECT_EQ(mask[Idx(t, 50, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 51, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 0, 0)], 0);
}

TEST(GaussianOutlierTest, IgnoresTextColumns) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({"word" + std::to_string(i)});
  const data::Table t = TableOf({"name"}, rows);
  const DetectionMask mask = RunStrategy(GaussianOutlierStrategy(3.0), t);
  for (uint8_t m : mask) EXPECT_EQ(m, 0);
}

TEST(HistogramOutlierTest, FlagsRareValues) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 99; ++i) rows.push_back({i % 2 == 0 ? "CA" : "TX"});
  rows.push_back({"C@"});
  const data::Table t = TableOf({"state"}, rows);
  const DetectionMask mask = RunStrategy(HistogramOutlierStrategy(0.02), t);
  EXPECT_EQ(mask[Idx(t, 99, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 0, 0)], 0);
}

TEST(HistogramOutlierTest, SkipsHighCardinalityColumns) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({"id" + std::to_string(i)});
  const data::Table t = TableOf({"id"}, rows);
  const DetectionMask mask = RunStrategy(HistogramOutlierStrategy(0.02), t);
  for (uint8_t m : mask) EXPECT_EQ(m, 0);
}

TEST(PatternViolationTest, ShapeAbstraction) {
  EXPECT_EQ(PatternViolationStrategy::Shape("8:42 a.m."), "9:9 a.a.");
  EXPECT_EQ(PatternViolationStrategy::Shape("1234"), "9");
  EXPECT_EQ(PatternViolationStrategy::Shape("abc12"), "a9");
  EXPECT_EQ(PatternViolationStrategy::Shape(""), "");
  // Same shape for same format, different content.
  EXPECT_EQ(PatternViolationStrategy::Shape("12.0"),
            PatternViolationStrategy::Shape("99.5"));
  EXPECT_NE(PatternViolationStrategy::Shape("12.0"),
            PatternViolationStrategy::Shape("12.0 oz"));
}

TEST(PatternViolationTest, FlagsFormatDeviants) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 99; ++i) {
    rows.push_back({std::to_string(10 + i % 50) + ".0"});
  }
  rows.push_back({"12.0 oz"});
  const data::Table t = TableOf({"ounces"}, rows);
  const DetectionMask mask = RunStrategy(PatternViolationStrategy(0.05), t);
  EXPECT_EQ(mask[Idx(t, 99, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 3, 0)], 0);
}

TEST(FdViolationTest, FlagsDependencyBreakers) {
  // city -> state holds except one row.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({"Portland", "OR"});
  for (int i = 0; i < 20; ++i) rows.push_back({"Austin", "TX"});
  rows.push_back({"Portland", "TX"});  // violation
  const data::Table t = TableOf({"city", "state"}, rows);
  const DetectionMask mask = RunStrategy(FdViolationStrategy(0.9), t);
  EXPECT_EQ(mask[Idx(t, 40, 1)], 1);
  EXPECT_EQ(mask[Idx(t, 0, 1)], 0);
}

TEST(FdViolationTest, NoDependencyNoFlags) {
  // Random-ish pairs: no FD, nothing flagged.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({"k" + std::to_string(i % 4),
                    "v" + std::to_string((i * 7) % 10)});
  }
  const data::Table t = TableOf({"a", "b"}, rows);
  const DetectionMask mask = RunStrategy(FdViolationStrategy(0.9), t);
  for (uint8_t m : mask) EXPECT_EQ(m, 0);
}

TEST(DictionaryTest, FlagsNearDuplicateOfFrequentValue) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({"Birmingham"});
  rows.push_back({"Birmingxam"});
  const data::Table t = TableOf({"city"}, rows);
  const DetectionMask mask = RunStrategy(DictionaryStrategy(2), t);
  EXPECT_EQ(mask[Idx(t, 50, 0)], 1);
  EXPECT_EQ(mask[Idx(t, 0, 0)], 0);
}

TEST(KeyDuplicateTest, InferKeyColumn) {
  // Column 0: flight id repeated over sources (key-like).
  std::vector<std::vector<std::string>> rows;
  for (int f = 0; f < 30; ++f) {
    for (int s = 0; s < 4; ++s) {
      rows.push_back({"FL" + std::to_string(f), "src" + std::to_string(s),
                      "8:42 a.m."});
    }
  }
  const data::Table t = TableOf({"flight", "src", "time"}, rows);
  EXPECT_EQ(KeyDuplicateStrategy::InferKeyColumn(t), 0);
}

TEST(KeyDuplicateTest, FlagsDisagreeingDuplicates) {
  std::vector<std::vector<std::string>> rows;
  for (int f = 0; f < 30; ++f) {
    const std::string time = std::to_string(1 + f % 12) + ":10 a.m.";
    for (int s = 0; s < 4; ++s) {
      rows.push_back({"FL" + std::to_string(f), "s" + std::to_string(s),
                      time});
    }
  }
  // Row 2 (flight FL0, source s2) disagrees on the time.
  rows[2][2] = "9:59 p.m.";
  const data::Table t = TableOf({"flight", "src", "time"}, rows);
  const DetectionMask mask = RunStrategy(KeyDuplicateStrategy(), t);
  EXPECT_EQ(mask[Idx(t, 2, 2)], 1);
  EXPECT_EQ(mask[Idx(t, 1, 2)], 0);
}

// ---------------------------------------------------------------- features

TEST(FeaturesTest, BuildsBitPerStrategy) {
  const data::Table t = TableOf({"a"}, {{""}, {"x"}});
  auto strategies = DefaultStrategies();
  const FeatureMatrix fm = BuildFeatures(t, strategies);
  EXPECT_EQ(fm.n_strategies, static_cast<int>(strategies.size()));
  EXPECT_EQ(fm.n_rows, 2);
  // The empty cell must be flagged by the null strategy (bit 0 in the
  // default zoo ordering), the "x" cell not.
  EXPECT_EQ(fm.cell(0, 0)[0], 1);
  EXPECT_EQ(fm.cell(1, 0)[0], 0);
  EXPECT_GE(fm.VoteCount(0, 0), 1);
}

TEST(FeaturesTest, HammingDistance) {
  const uint8_t a[] = {0, 1, 1, 0};
  const uint8_t b[] = {1, 1, 0, 0};
  EXPECT_EQ(HammingDistance(a, b, 4), 2);
  EXPECT_EQ(HammingDistance(a, a, 4), 0);
}

TEST(FeaturesTest, ParallelFeaturizationIsBitIdentical) {
  // Each strategy writes disjoint slots, so the feature matrix must not
  // depend on how the strategy fan-out is scheduled.
  datagen::GenOptions gen;
  gen.scale = 0.05;
  gen.seed = 11;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  auto strategies = DefaultStrategies();

  const FeatureMatrix serial = BuildFeatures(pair.dirty, strategies);
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    const FeatureMatrix parallel = BuildFeatures(pair.dirty, strategies, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(parallel.bits.size(), serial.bits.size());
    EXPECT_EQ(parallel.bits, serial.bits);
  }
}

TEST(RahaDetectorTest, FeatureThreadsDoNotChangeDetections) {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  gen.seed = 23;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);

  RahaOptions serial_options;
  serial_options.n_label_tuples = 8;
  RahaOptions parallel_options = serial_options;
  parallel_options.feature_threads = 4;

  Rng rng_a(99);
  RahaDetector serial(serial_options);
  const DetectionMask mask_a =
      serial.DetectErrors(pair.dirty, pair.clean, &rng_a);

  Rng rng_b(99);
  RahaDetector parallel(parallel_options);
  const DetectionMask mask_b =
      parallel.DetectErrors(pair.dirty, pair.clean, &rng_b);
  EXPECT_EQ(mask_a, mask_b);
}

// -------------------------------------------------------------- clustering

TEST(ClusterTest, GroupsIdenticalVectorsTogether) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({i % 2 == 0 ? "" : "ok"});
  const data::Table t = TableOf({"a"}, rows);
  const FeatureMatrix fm = BuildFeatures(t, DefaultStrategies());
  const ColumnClustering clustering = ClusterColumn(fm, 0, 5);
  EXPECT_GE(clustering.n_clusters, 1);
  EXPECT_LE(clustering.n_clusters, 5);
  // All empty cells share a cluster; all "ok" cells share a cluster.
  EXPECT_EQ(clustering.cell_cluster[0], clustering.cell_cluster[2]);
  EXPECT_EQ(clustering.cell_cluster[1], clustering.cell_cluster[3]);
  EXPECT_NE(clustering.cell_cluster[0], clustering.cell_cluster[1]);
}

TEST(ClusterTest, RespectsTargetCount) {
  // Build a column with many distinct feature vectors via mixed content.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 60; ++i) {
    switch (i % 5) {
      case 0: rows.push_back({""}); break;
      case 1: rows.push_back({"12.0"}); break;
      case 2: rows.push_back({"12.0 oz"}); break;
      case 3: rows.push_back({"word"}); break;
      default: rows.push_back({"999999"}); break;
    }
  }
  const data::Table t = TableOf({"a"}, rows);
  const FeatureMatrix fm = BuildFeatures(t, DefaultStrategies());
  const ColumnClustering c2 = ClusterColumn(fm, 0, 2);
  EXPECT_LE(c2.n_clusters, 2);
  for (int id : c2.cell_cluster) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, c2.n_clusters);
  }
}

// ---------------------------------------------------------------- detector

TEST(RahaDetectorTest, SampleTuplesAreDistinctAndInRange) {
  datagen::GenOptions options;
  options.scale = 0.1;
  const datagen::DatasetPair pair = datagen::MakeBeers(options);
  RahaDetector detector;
  detector.Analyze(pair.dirty);
  Rng rng(3);
  const std::vector<int64_t> sampled = detector.SampleTuples(20, &rng);
  EXPECT_EQ(sampled.size(), 20u);
  std::set<int64_t> distinct(sampled.begin(), sampled.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (int64_t r : sampled) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, pair.dirty.num_rows());
  }
}

TEST(RahaDetectorTest, DetectsInjectedErrorsBetterThanChance) {
  datagen::GenOptions options;
  options.scale = 0.15;
  options.seed = 4;
  const datagen::DatasetPair pair = datagen::MakeHospital(options);
  RahaDetector detector;
  Rng rng(5);
  const DetectionMask predicted =
      detector.DetectErrors(pair.dirty, pair.clean, &rng);

  eval::Confusion confusion;
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < pair.dirty.num_columns(); ++c) {
      const int truth = pair.dirty.cell(r, c) != pair.clean.cell(r, c);
      confusion.Add(predicted[Idx(pair.dirty, r, c)], truth);
    }
  }
  // Hospital's error rate is 3%; random guessing would have precision
  // ~0.03. The strategy ensemble must do far better.
  EXPECT_GT(confusion.F1(), 0.3) << "P=" << confusion.Precision()
                                 << " R=" << confusion.Recall();
}

TEST(RahaDetectorTest, PropagateUsesOracleLabels) {
  // A column where half the values are empty. Label oracle says empty ==
  // error; propagation must classify all empties as errors.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 40; ++i) rows.push_back({i % 2 == 0 ? "" : "v"});
  const data::Table t = TableOf({"a"}, rows);
  RahaDetector detector;
  detector.Analyze(t);
  LabelOracle oracle = [&t](int64_t row, int col) {
    return t.cell(static_cast<int>(row), col).empty() ? 1 : 0;
  };
  const DetectionMask mask = detector.Propagate({0, 1, 2, 3}, oracle);
  for (int r = 0; r < 40; ++r) {
    EXPECT_EQ(mask[Idx(t, r, 0)], r % 2 == 0 ? 1 : 0) << r;
  }
}

}  // namespace
}  // namespace birnn::raha
