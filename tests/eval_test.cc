#include <gtest/gtest.h>

#include <sstream>

#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"

namespace birnn::eval {
namespace {

TEST(ConfusionTest, CountsAndRates) {
  Confusion c;
  // 3 TP, 1 FP, 2 FN, 4 TN.
  for (int i = 0; i < 3; ++i) c.Add(1, 1);
  c.Add(1, 0);
  for (int i = 0; i < 2; ++i) c.Add(0, 1);
  for (int i = 0; i < 4; ++i) c.Add(0, 0);

  EXPECT_EQ(c.tp, 3);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 2);
  EXPECT_EQ(c.tn, 4);
  EXPECT_EQ(c.total(), 10);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.6);
  EXPECT_NEAR(c.F1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.7);
}

TEST(ConfusionTest, DegenerateCases) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);

  Confusion all_negative;
  all_negative.Add(0, 0);
  EXPECT_DOUBLE_EQ(all_negative.F1(), 0.0);
  EXPECT_DOUBLE_EQ(all_negative.Accuracy(), 1.0);
}

TEST(EvaluateTest, FromVectors) {
  const std::vector<uint8_t> pred{1, 0, 1, 0};
  const std::vector<int32_t> truth{1, 1, 0, 0};
  const Confusion c = Evaluate(pred, truth);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(MetricsTest, FromAndToString) {
  Confusion c;
  c.Add(1, 1);
  c.Add(0, 0);
  const Metrics m = Metrics::From(c);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_NE(m.ToString().find("F1=1.00"), std::string::npos);
}

TEST(TableWriterTest, AlignsColumns) {
  TableWriter writer({"Name", "F1"});
  writer.AddRow({"ETSB-RNN", "0.91"});
  writer.AddRow({"x", "1"});
  std::ostringstream out;
  writer.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| Name     | F1   |"), std::string::npos);
  EXPECT_NE(text.find("| ETSB-RNN | 0.91 |"), std::string::npos);
  EXPECT_NE(text.find("|----------|------|"), std::string::npos);
}

TEST(ReportTest, Fmt2) {
  EXPECT_EQ(Fmt2(0.851), "0.85");
  EXPECT_EQ(Fmt2(1.0), "1.00");
}

TEST(CurveTest, AverageCurveAggregatesHistories) {
  RepeatedResult result;
  core::EpochStats e0;
  e0.epoch = 0;
  e0.train_accuracy = 0.5;
  e0.test_accuracy = 0.4;
  e0.has_test = true;
  core::EpochStats e1 = e0;
  e1.epoch = 1;
  e1.train_accuracy = 0.8;
  e1.test_accuracy = 0.7;
  result.histories.push_back({e0, e1});
  core::EpochStats f0 = e0;
  f0.test_accuracy = 0.6;
  core::EpochStats f1 = e1;
  f1.test_accuracy = 0.9;
  result.histories.push_back({f0, f1});

  const auto test_curve = AverageTestAccuracyCurve(result);
  ASSERT_EQ(test_curve.size(), 2u);
  EXPECT_DOUBLE_EQ(test_curve[0].mean, 0.5);
  EXPECT_DOUBLE_EQ(test_curve[1].mean, 0.8);
  EXPECT_GT(test_curve[0].ci95, 0.0);

  const auto train_curve = AverageTrainAccuracyCurve(result);
  ASSERT_EQ(train_curve.size(), 2u);
  EXPECT_DOUBLE_EQ(train_curve[1].mean, 0.8);
}

TEST(CurveTest, PrintCurveFormat) {
  std::ostringstream out;
  PrintCurve("fig6 beers", {{0, 0.5, 0.01}, {1, 0.75, 0.02}}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# fig6 beers"), std::string::npos);
  EXPECT_NE(text.find("0\t0.5000\t0.0100"), std::string::npos);
  EXPECT_NE(text.find("1\t0.7500\t0.0200"), std::string::npos);
}

}  // namespace
}  // namespace birnn::eval
