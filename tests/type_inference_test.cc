#include <gtest/gtest.h>

#include "data/type_inference.h"
#include "datagen/datasets.h"

namespace birnn::data {
namespace {

TEST(ClassifyValueTest, EmptySpellings) {
  EXPECT_EQ(ClassifyValue(""), ValueType::kEmpty);
  EXPECT_EQ(ClassifyValue("  "), ValueType::kEmpty);
  EXPECT_EQ(ClassifyValue("NaN"), ValueType::kEmpty);
  EXPECT_EQ(ClassifyValue("n/a"), ValueType::kEmpty);
  EXPECT_EQ(ClassifyValue("null"), ValueType::kEmpty);
  EXPECT_EQ(ClassifyValue("-"), ValueType::kEmpty);
}

TEST(ClassifyValueTest, Integers) {
  EXPECT_EQ(ClassifyValue("0"), ValueType::kInteger);
  EXPECT_EQ(ClassifyValue("42"), ValueType::kInteger);
  EXPECT_EQ(ClassifyValue("-7"), ValueType::kInteger);
  EXPECT_EQ(ClassifyValue("+13"), ValueType::kInteger);
  EXPECT_EQ(ClassifyValue("01907"), ValueType::kInteger);
}

TEST(ClassifyValueTest, Decimals) {
  EXPECT_EQ(ClassifyValue("0.061"), ValueType::kDecimal);
  EXPECT_EQ(ClassifyValue("-3.5"), ValueType::kDecimal);
  EXPECT_EQ(ClassifyValue("1e3"), ValueType::kDecimal);
}

TEST(ClassifyValueTest, Times) {
  EXPECT_EQ(ClassifyValue("6:55 a.m."), ValueType::kTime);
  EXPECT_EQ(ClassifyValue("12:30 p.m."), ValueType::kTime);
  EXPECT_EQ(ClassifyValue("18:55"), ValueType::kTime);
  EXPECT_NE(ClassifyValue("6:5"), ValueType::kTime);      // one minute digit
  EXPECT_NE(ClassifyValue("ab:55"), ValueType::kTime);    // non-digit hour
  EXPECT_NE(ClassifyValue("6:55 oclock"), ValueType::kTime);
}

TEST(ClassifyValueTest, Dates) {
  EXPECT_EQ(ClassifyValue("12/02/2011"), ValueType::kDate);
  EXPECT_EQ(ClassifyValue("12/02/2011 6:55 a.m."), ValueType::kDate);
  EXPECT_EQ(ClassifyValue("22-Mar"), ValueType::kDate);
  EXPECT_EQ(ClassifyValue("Mar-22"), ValueType::kDate);
  EXPECT_EQ(ClassifyValue("1 June 2005"), ValueType::kDate);
  // Month word without digits is text.
  EXPECT_EQ(ClassifyValue("March"), ValueType::kText);
}

TEST(ClassifyValueTest, Text) {
  EXPECT_EQ(ClassifyValue("San Francisco"), ValueType::kText);
  EXPECT_EQ(ClassifyValue("12.0 oz"), ValueType::kText);
  EXPECT_EQ(ClassifyValue("0.061%"), ValueType::kText);
}

TEST(InferColumnTypeTest, DominantTypeAndDominance) {
  Table t(std::vector<std::string>{"num"});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t.AppendRow({std::to_string(i)}).ok());
  }
  ASSERT_TRUE(t.AppendRow({"oops"}).ok());
  ASSERT_TRUE(t.AppendRow({""}).ok());
  const ColumnTypeInfo info = InferColumnType(t, 0);
  EXPECT_EQ(info.dominant, ValueType::kInteger);
  EXPECT_NEAR(info.dominance, 8.0 / 9.0, 1e-9);
  EXPECT_EQ(info.empty_count, 1);
  EXPECT_EQ(info.total_count, 10);
  EXPECT_TRUE(info.IsNumeric());
}

TEST(InferColumnTypeTest, MixedIntDecimalCountsAsDecimal) {
  Table t(std::vector<std::string>{"x"});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(t.AppendRow({"7"}).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t.AppendRow({"7.5"}).ok());
  const ColumnTypeInfo info = InferColumnType(t, 0);
  EXPECT_EQ(info.dominant, ValueType::kDecimal);
  EXPECT_DOUBLE_EQ(info.dominance, 1.0);
  EXPECT_TRUE(info.IsNumeric());
}

TEST(InferColumnTypeTest, TextColumnIsNotNumeric) {
  Table t(std::vector<std::string>{"city"});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({"Portland"}).ok());
  }
  const ColumnTypeInfo info = InferColumnType(t, 0);
  EXPECT_EQ(info.dominant, ValueType::kText);
  EXPECT_FALSE(info.IsNumeric());
}

TEST(InferColumnTypeTest, AllEmptyColumn) {
  Table t(std::vector<std::string>{"x"});
  ASSERT_TRUE(t.AppendRow({""}).ok());
  ASSERT_TRUE(t.AppendRow({"NaN"}).ok());
  const ColumnTypeInfo info = InferColumnType(t, 0);
  EXPECT_EQ(info.dominant, ValueType::kEmpty);
  EXPECT_FALSE(info.IsNumeric());
}

TEST(InferAllColumnTypesTest, RealisticDataset) {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  const datagen::DatasetPair pair = datagen::MakeFlights(gen);
  const auto types = InferAllColumnTypes(pair.clean);
  ASSERT_EQ(types.size(), 7u);
  // The four time columns must be recognized as times.
  for (const char* col : {"sched_dep_time", "act_dep_time",
                          "sched_arr_time", "act_arr_time"}) {
    const int c = pair.clean.ColumnIndex(col);
    EXPECT_EQ(types[static_cast<size_t>(c)].dominant, ValueType::kTime)
        << col;
  }
  // Source and flight id are text.
  EXPECT_EQ(types[static_cast<size_t>(pair.clean.ColumnIndex("src"))].dominant,
            ValueType::kText);
}

TEST(ValueTypeNameTest, AllNamed) {
  EXPECT_STREQ(ValueTypeName(ValueType::kEmpty), "empty");
  EXPECT_STREQ(ValueTypeName(ValueType::kInteger), "integer");
  EXPECT_STREQ(ValueTypeName(ValueType::kDecimal), "decimal");
  EXPECT_STREQ(ValueTypeName(ValueType::kDate), "date");
  EXPECT_STREQ(ValueTypeName(ValueType::kTime), "time");
  EXPECT_STREQ(ValueTypeName(ValueType::kText), "text");
}

}  // namespace
}  // namespace birnn::data
