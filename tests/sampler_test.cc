#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/prepare.h"
#include "datagen/datasets.h"
#include "sampling/sampler.h"

namespace birnn::sampling {
namespace {

/// Builds the running-example frame of Fig. 3/4: 4 tuples x 3 attributes.
/// Values chosen so tuple 0 has an empty cell and tuples share values.
data::CellFrame PaperExampleFrame() {
  data::Table dirty(std::vector<std::string>{"attr1", "attr2", "attr3"});
  // id_=0: unique values + one empty -> maximal (#unseenAttr, #empty).
  EXPECT_TRUE(dirty.AppendRow({"21", "e3", ""}).ok());
  // id_=1 and id_=2: three unseen values each after tuple 0 is removed.
  EXPECT_TRUE(dirty.AppendRow({"45", "xx", "1111"}).ok());
  EXPECT_TRUE(dirty.AppendRow({"30", "yy", "2222"}).ok());
  // id_=3: shares its values with tuple 0 and 1 -> low diversity.
  EXPECT_TRUE(dirty.AppendRow({"21", "e3", "1111"}).ok());
  data::Table clean = dirty;
  auto frame = data::PrepareData(dirty, clean);
  EXPECT_TRUE(frame.ok());
  return *frame;
}

TEST(RandomSetTest, SelectsDistinctIdsInRange) {
  const data::CellFrame frame = PaperExampleFrame();
  RandomSetSampler sampler;
  Rng rng(1);
  auto ids = sampler.Select(frame, 2, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  std::set<int64_t> distinct(ids->begin(), ids->end());
  EXPECT_EQ(distinct.size(), 2u);
  for (int64_t id : *ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 4);
  }
}

TEST(RandomSetTest, ClampsToTupleCount) {
  const data::CellFrame frame = PaperExampleFrame();
  RandomSetSampler sampler;
  Rng rng(2);
  auto ids = sampler.Select(frame, 100, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 4u);
}

TEST(RandomSetTest, UniformCoverage) {
  const data::CellFrame frame = PaperExampleFrame();
  RandomSetSampler sampler;
  std::set<int64_t> ever_chosen;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    auto ids = sampler.Select(frame, 1, &rng);
    ASSERT_TRUE(ids.ok());
    ever_chosen.insert((*ids)[0]);
  }
  EXPECT_EQ(ever_chosen.size(), 4u);  // every tuple reachable
}

TEST(DiverSetTest, PicksMostDiverseTupleFirst) {
  // Tuple 0 ties with 1 and 2 on #unseenAttr (3 each) but wins on #empty.
  const data::CellFrame frame = PaperExampleFrame();
  DiverSetSampler sampler;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto ids = sampler.Select(frame, 1, &rng);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ((*ids)[0], 0) << "seed " << seed;
  }
}

TEST(DiverSetTest, SecondPickAvoidsCoveredValues) {
  // After tuple 0, tuple 3 retains only one unseen value ("1111" is shared
  // with tuple 1; "21"/"e3" are covered by tuple 0). Tuples 1 and 2 have 3
  // unseen values each, so the second pick must be 1 or 2, never 3.
  const data::CellFrame frame = PaperExampleFrame();
  DiverSetSampler sampler;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto ids = sampler.Select(frame, 2, &rng);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ((*ids)[0], 0);
    EXPECT_NE((*ids)[1], 3) << "seed " << seed;
  }
}

TEST(DiverSetTest, ReturnsRequestedCountWithoutDuplicates) {
  const data::CellFrame frame = PaperExampleFrame();
  DiverSetSampler sampler;
  Rng rng(7);
  auto ids = sampler.Select(frame, 4, &rng);
  ASSERT_TRUE(ids.ok());
  std::set<int64_t> distinct(ids->begin(), ids->end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(DiverSetTest, CoversMoreDistinctValuesThanRandom) {
  // Property from §5.2: the diverse trainset carries more distinct concat
  // values than a random one, on a dataset with many repeated values.
  datagen::GenOptions options;
  options.scale = 0.1;
  const datagen::DatasetPair pair = datagen::MakeHospital(options);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  ASSERT_TRUE(frame.ok());

  auto distinct_concats = [&](const std::vector<int64_t>& ids) {
    std::unordered_set<std::string> seen;
    for (int64_t id : ids) {
      for (int a = 0; a < frame->num_attrs(); ++a) {
        seen.insert(frame->cell(id, a).concat);
      }
    }
    return seen.size();
  };

  size_t diverse_total = 0;
  size_t random_total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiverSetSampler diverse;
    RandomSetSampler random;
    Rng rng1(seed);
    Rng rng2(seed);
    auto div_ids = diverse.Select(*frame, 20, &rng1);
    auto rnd_ids = random.Select(*frame, 20, &rng2);
    ASSERT_TRUE(div_ids.ok());
    ASSERT_TRUE(rnd_ids.ok());
    diverse_total += distinct_concats(*div_ids);
    random_total += distinct_concats(*rnd_ids);
  }
  EXPECT_GT(diverse_total, random_total);
}

TEST(DiverSetTest, NeverUsesLabels) {
  // Two frames that differ only in labels must produce identical samples.
  data::Table dirty(std::vector<std::string>{"a", "b"});
  data::Table clean_same(std::vector<std::string>{"a", "b"});
  data::Table clean_diff(std::vector<std::string>{"a", "b"});
  for (int i = 0; i < 12; ++i) {
    const std::string v1 = "v" + std::to_string(i % 5);
    const std::string v2 = "w" + std::to_string(i % 3);
    ASSERT_TRUE(dirty.AppendRow({v1, v2}).ok());
    ASSERT_TRUE(clean_same.AppendRow({v1, v2}).ok());
    ASSERT_TRUE(clean_diff.AppendRow({v1 + "!", v2}).ok());
  }
  auto frame1 = data::PrepareData(dirty, clean_same);
  auto frame2 = data::PrepareData(dirty, clean_diff);
  ASSERT_TRUE(frame1.ok());
  ASSERT_TRUE(frame2.ok());
  DiverSetSampler sampler;
  Rng rng1(9);
  Rng rng2(9);
  auto ids1 = sampler.Select(*frame1, 5, &rng1);
  auto ids2 = sampler.Select(*frame2, 5, &rng2);
  ASSERT_TRUE(ids1.ok());
  ASSERT_TRUE(ids2.ok());
  EXPECT_EQ(*ids1, *ids2);
}

TEST(RahaSetTest, SelectsDistinctTuples) {
  datagen::GenOptions options;
  options.scale = 0.05;
  const datagen::DatasetPair pair = datagen::MakeBeers(options);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  ASSERT_TRUE(frame.ok());
  RahaSetSampler sampler;
  Rng rng(11);
  auto ids = sampler.Select(*frame, 20, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 20u);
  std::set<int64_t> distinct(ids->begin(), ids->end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(MakeSamplerTest, FactoryDispatch) {
  EXPECT_TRUE(MakeSampler("DiverSet").ok());
  EXPECT_TRUE(MakeSampler("randomset").ok());
  EXPECT_TRUE(MakeSampler("RAHA").ok());
  EXPECT_FALSE(MakeSampler("bogus").ok());
  EXPECT_EQ((*MakeSampler("diverset"))->name(), "DiverSet");
}

TEST(SamplerTest, EmptyFrameFails) {
  data::CellFrame empty;
  RandomSetSampler random;
  DiverSetSampler diverse;
  Rng rng(1);
  EXPECT_FALSE(random.Select(empty, 5, &rng).ok());
  EXPECT_FALSE(diverse.Select(empty, 5, &rng).ok());
}

}  // namespace
}  // namespace birnn::sampling
