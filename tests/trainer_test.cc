#include <gtest/gtest.h>

#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"

namespace birnn::core {
namespace {

/// Tiny learnable dataset: values ending in 'x' are errors.
void MakeToyData(int n_rows, data::EncodedDataset* train,
                 data::EncodedDataset* test, ModelConfig* config) {
  data::Table dirty(std::vector<std::string>{"a", "b"});
  data::Table clean(std::vector<std::string>{"a", "b"});
  Rng rng(123);
  for (int i = 0; i < n_rows; ++i) {
    const bool bad_a = rng.Bernoulli(0.3);
    const bool bad_b = rng.Bernoulli(0.3);
    const std::string va = "val" + std::to_string(i % 7);
    const std::string vb = std::to_string(100 + i % 13);
    EXPECT_TRUE(dirty.AppendRow({bad_a ? va + "x" : va,
                                 bad_b ? vb + "x" : vb}).ok());
    EXPECT_TRUE(clean.AppendRow({va, vb}).ok());
  }
  auto frame = data::PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  data::CharIndex chars = data::CharIndex::Build(*frame);
  data::EncodedDataset all = data::EncodeCells(*frame, chars);
  std::vector<int64_t> train_ids;
  for (int64_t i = 0; i < n_rows / 3; ++i) train_ids.push_back(i);
  data::SplitByRowIds(all, train_ids, train, test);

  *config = ModelConfig();
  config->vocab = all.vocab;
  config->max_len = all.max_len;
  config->n_attrs = all.n_attrs;
  config->char_emb_dim = 8;
  config->units = 12;
  config->enriched = true;
  config->attr_emb_dim = 4;
  config->attr_units = 4;
  config->length_dense_dim = 8;
  config->hidden_dense_dim = 8;
  config->seed = 3;
}

TEST(TrainerTest, LossDecreasesAndBestEpochTracked) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(60, &train, &test, &config);
  ErrorDetectionModel model(config);

  TrainerOptions options;
  options.epochs = 25;
  options.seed = 5;
  Trainer trainer(options);
  const TrainHistory history = trainer.Fit(&model, train, &test);

  ASSERT_EQ(history.epochs.size(), 25u);
  EXPECT_GE(history.best_epoch, 0);
  EXPECT_LT(history.best_epoch, 25);
  // Best train loss is the minimum over the recorded epochs.
  double min_loss = history.epochs[0].train_loss;
  for (const auto& e : history.epochs) {
    min_loss = std::min(min_loss, e.train_loss);
  }
  EXPECT_DOUBLE_EQ(history.best_train_loss, min_loss);
  // Training made progress.
  EXPECT_LT(history.epochs.back().train_loss,
            history.epochs.front().train_loss);
  EXPECT_GT(history.train_seconds, 0.0);
}

TEST(TrainerTest, RestoresBestWeights) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(45, &train, &test, &config);
  ErrorDetectionModel model(config);

  TrainerOptions options;
  options.epochs = 15;
  options.seed = 6;
  Trainer trainer(options);
  const TrainHistory history = trainer.Fit(&model, train, &test);

  // Recompute the train loss with the restored weights in inference mode:
  // it should be near the recorded best loss, definitely not the last
  // epoch's if that was worse.
  const double acc = DatasetAccuracy(model, train, 64, {});
  EXPECT_GT(acc, 0.5);
  EXPECT_GE(history.best_epoch, 0);
}

TEST(TrainerTest, TracksTestAccuracyWhenEnabled) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(45, &train, &test, &config);
  ErrorDetectionModel model(config);

  TrainerOptions options;
  options.epochs = 5;
  options.track_test_accuracy = true;
  options.test_eval_max_cells = 40;
  Trainer trainer(options);
  const TrainHistory history = trainer.Fit(&model, train, &test);
  for (const auto& e : history.epochs) {
    EXPECT_TRUE(e.has_test);
    EXPECT_GE(e.test_accuracy, 0.0);
    EXPECT_LE(e.test_accuracy, 1.0);
  }
}

TEST(TrainerTest, NoTestTrackingByDefault) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(30, &train, &test, &config);
  ErrorDetectionModel model(config);
  TrainerOptions options;
  options.epochs = 3;
  Trainer trainer(options);
  const TrainHistory history = trainer.Fit(&model, train, &test);
  for (const auto& e : history.epochs) EXPECT_FALSE(e.has_test);
}

TEST(TrainerTest, LearnsTheToyRule) {
  // End-to-end: the 'ends with x' rule must be learnable to high accuracy.
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(90, &train, &test, &config);
  ErrorDetectionModel model(config);
  TrainerOptions options;
  options.epochs = 40;
  options.seed = 8;
  Trainer trainer(options);
  trainer.Fit(&model, train, &test);
  const double acc = DatasetAccuracy(model, test, 128, {});
  EXPECT_GT(acc, 0.9) << "test accuracy " << acc;
}

// Every weight and batch-norm running statistic, flattened for bit-exact
// comparison.
std::vector<float> FlattenSnapshot(const ModelSnapshot& s) {
  std::vector<float> out;
  for (const nn::Tensor& t : s.params) {
    out.insert(out.end(), t.data(), t.data() + t.size());
  }
  out.insert(out.end(), s.bn_mean.data(), s.bn_mean.data() + s.bn_mean.size());
  out.insert(out.end(), s.bn_var.data(), s.bn_var.data() + s.bn_var.size());
  return out;
}

TEST(TrainerTest, WarmStartResumeIsBitIdenticalToUninterruptedRun) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(45, &train, &test, &config);

  TrainerOptions base;
  base.epochs = 8;
  base.seed = 17;
  base.restore_best = false;       // judge the final-epoch weights as-is
  base.calibrate_batchnorm = false;  // segment 1 must not touch BN stats

  // The uninterrupted reference run.
  ErrorDetectionModel full(config);
  Trainer(base).Fit(&full, train);

  // The same schedule interrupted after epoch 3: first segment exports
  // its optimizer state...
  ErrorDetectionModel seg(config);
  TrainerOptions first = base;
  first.epochs = 3;
  TrainState state;
  Trainer(first).Fit(&seg, train, nullptr, &state);

  // ...the checkpoint is restored into a FRESH model (exactly what a
  // bundle load does)...
  ErrorDetectionModel resumed(config);
  resumed.Restore(seg.Snapshot());

  // ...and the second segment resumes at epoch 3 with the imported state.
  TrainerOptions second = base;
  second.start_epoch = 3;
  Trainer(second).Fit(&resumed, train, nullptr, &state);

  EXPECT_EQ(FlattenSnapshot(full.Snapshot()),
            FlattenSnapshot(resumed.Snapshot()));

  // Control: resuming WITHOUT the optimizer state restarts the RMSprop
  // cache and diverges — the bit-identity above is not vacuous.
  ErrorDetectionModel cold(config);
  cold.Restore(seg.Snapshot());
  Trainer(second).Fit(&cold, train);
  EXPECT_NE(FlattenSnapshot(cold.Snapshot()),
            FlattenSnapshot(full.Snapshot()));
}

TEST(TrainerTest, WarmStartCarriesBestCheckpointAcrossSegments) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(45, &train, &test, &config);

  TrainerOptions base;
  base.epochs = 8;
  base.seed = 21;
  base.calibrate_batchnorm = false;
  // restore_best stays on for the reference and the FINAL segment only:
  // an intermediate segment must hand its last-epoch weights forward.
  ErrorDetectionModel full(config);
  const TrainHistory reference = Trainer(base).Fit(&full, train);

  ErrorDetectionModel seg(config);
  TrainerOptions first = base;
  first.epochs = 5;
  first.restore_best = false;
  TrainState state;
  Trainer(first).Fit(&seg, train, nullptr, &state);
  EXPECT_GE(state.best_epoch, 0);

  ErrorDetectionModel resumed(config);
  resumed.Restore(seg.Snapshot());
  TrainerOptions second = base;
  second.start_epoch = 5;
  const TrainHistory resumed_history =
      Trainer(second).Fit(&resumed, train, nullptr, &state);

  // The split run restores the same best checkpoint — even when the best
  // epoch fell inside the first segment.
  EXPECT_EQ(reference.best_epoch, resumed_history.best_epoch);
  EXPECT_EQ(FlattenSnapshot(full.Snapshot()),
            FlattenSnapshot(resumed.Snapshot()));
}

TEST(PredictDatasetTest, OneLabelPerCell) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeToyData(30, &train, &test, &config);
  ErrorDetectionModel model(config);
  std::vector<uint8_t> predictions;
  PredictDataset(model, test, 7, &predictions);  // odd batch size
  EXPECT_EQ(predictions.size(), static_cast<size_t>(test.num_cells()));
  for (uint8_t p : predictions) EXPECT_LE(p, 1);
}

}  // namespace
}  // namespace birnn::core
