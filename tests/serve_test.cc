// serve subsystem tests: bundle save/load round trips, the model registry,
// the line protocol, the TCP server end to end over real sockets, and the
// headline invariant — a served detector answers bit-identically to the
// offline ErrorDetector run that produced its bundle.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/model.h"
#include "datagen/datasets.h"
#include "serve/batcher.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace birnn::serve {
namespace {

core::TrainedDetector MakeTinyTrained() {
  core::TrainedDetector trained;
  trained.chars = data::CharIndex::BuildFromStrings(
      {"abcdefghijklmnopqrstuvwxyz0123456789 .-"});
  core::ModelConfig config;
  config.vocab = trained.chars.vocab_size();
  config.max_len = 12;
  config.n_attrs = 3;
  config.char_emb_dim = 8;
  config.units = 8;
  config.stacks = 1;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 4;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 8;
  config.seed = 99;
  trained.config = config;
  trained.model = std::make_unique<core::ErrorDetectionModel>(config);
  trained.attr_names = {"id", "name", "score"};
  trained.attr_max_value_len = {8, 12, 6};
  return trained;
}

LoadedDetector MakeTinyDetector() {
  auto loaded = MakeLoadedDetector(MakeTinyTrained());
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

std::vector<CellQuery> MakeQueries(int n) {
  std::vector<CellQuery> queries;
  for (int i = 0; i < n; ++i) {
    CellQuery q;
    q.attr = i % 3;
    q.value = "cell " + std::to_string(i * 13 % 31);
    queries.push_back(std::move(q));
  }
  return queries;
}

std::string TempDir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ----------------------------------------------------------------- Protocol

TEST(ProtocolTest, ParsesDetectRequest) {
  auto req = ParseRequest(
      R"({"id":"r1","model":"m","cells":[{"attr":"city","value":"x"},)"
      R"({"attr":2,"value":"y"}]})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->id, "r1");
  EXPECT_EQ(req->op, "detect");  // default
  EXPECT_EQ(req->model, "m");
  ASSERT_EQ(req->cells.size(), 2u);
  EXPECT_EQ(req->cells[0].attr_name, "city");
  EXPECT_EQ(req->cells[0].value, "x");
  EXPECT_EQ(req->cells[1].attr, 2);
  EXPECT_EQ(req->cells[1].value, "y");
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2,3]").ok());                 // not an object
  EXPECT_FALSE(ParseRequest(R"({"op":"detect"})").ok());      // no cells
  EXPECT_FALSE(ParseRequest(R"({"op":"explode"})").ok());     // unknown op
  EXPECT_FALSE(
      ParseRequest(R"({"cells":[{"value":"x"}]})").ok());     // no attr
  EXPECT_FALSE(
      ParseRequest(R"({"cells":[{"attr":1.5,"value":"x"}]})").ok());
  EXPECT_FALSE(ParseRequest(R"({"cells":[{"attr":1}]})").ok());  // no value
  EXPECT_TRUE(ParseRequest(R"({"op":"ping"})").ok());  // ops need no cells
}

TEST(ProtocolTest, ParsesReloadAndRollbackRequests) {
  auto reload = ParseRequest(
      R"({"id":"a","op":"reload","model":"m","dir":"/tmp/bundle.v2"})");
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload->op, "reload");
  EXPECT_EQ(reload->model, "m");
  EXPECT_EQ(reload->dir, "/tmp/bundle.v2");

  auto rollback = ParseRequest(R"({"op":"rollback"})");
  ASSERT_TRUE(rollback.ok());
  EXPECT_EQ(rollback->op, "rollback");
  EXPECT_TRUE(rollback->dir.empty());

  auto ack = JsonValue::Parse(ReloadResponse("a", "m", 7));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->GetString("status"), "OK");
  EXPECT_EQ(ack->GetString("model"), "m");
  EXPECT_EQ(ack->GetNumber("generation"), 7.0);
}

namespace {
void IgnoreSigusr1(int) {}
}  // namespace

TEST(ProtocolTest, SendAllSurvivesShortWritesAndEintr) {
  // A socketpair with minimal send buffer forces write() to go short; a
  // stream of SIGUSR1s (installed without SA_RESTART) forces EINTR inside
  // blocked writes. SendAll must still deliver every byte, in order.
  struct sigaction action {};
  struct sigaction saved {};
  action.sa_handler = IgnoreSigusr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: write() really returns EINTR
  ASSERT_EQ(0, sigaction(SIGUSR1, &action, &saved));

  int pair[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, pair));
  const int sndbuf = 1;  // the kernel clamps this to its floor — tiny
  ::setsockopt(pair[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));

  std::string payload;
  payload.reserve(1 << 20);
  for (int i = 0; payload.size() < (1 << 20); ++i) {
    payload += "chunk " + std::to_string(i) + " ";
  }

  std::atomic<bool> writer_done{false};
  bool sent_ok = false;
  std::thread writer([&] {
    sent_ok = WriteResponseLine(pair[0], payload);
    writer_done.store(true);
    ::shutdown(pair[0], SHUT_WR);
  });
  const pthread_t writer_handle = writer.native_handle();

  // Pepper the writer with signals while it fights the full socket.
  std::thread interrupter([&] {
    while (!writer_done.load()) {
      pthread_kill(writer_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Drain slowly enough that the send buffer stays full most of the time.
  std::string received;
  char chunk[512];
  for (;;) {
    const ssize_t n = ::read(pair[1], chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    received.append(chunk, static_cast<size_t>(n));
  }
  writer.join();
  interrupter.join();

  EXPECT_TRUE(sent_ok);
  ASSERT_EQ(received.size(), payload.size() + 1);
  EXPECT_EQ(received.back(), '\n');
  received.pop_back();
  EXPECT_EQ(received, payload);  // byte-exact despite every interruption
  ::close(pair[0]);
  ::close(pair[1]);
  sigaction(SIGUSR1, &saved, nullptr);
}

TEST(ProtocolTest, SendAllReportsBrokenPipe) {
  struct sigaction ignore {};
  struct sigaction saved {};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  ASSERT_EQ(0, sigaction(SIGPIPE, &ignore, &saved));
  int pair[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, pair));
  ::close(pair[1]);
  const std::string big(1 << 20, 'x');
  EXPECT_FALSE(SendAll(pair[0], big.data(), big.size()));
  ::close(pair[0]);
  sigaction(SIGPIPE, &saved, nullptr);
}

TEST(ProtocolTest, JsonFloatRoundTripsBits) {
  for (const float v : {0.0f, 1.0f, 0.5f, 0.123456789f, 0.9999999f,
                        1.1754944e-38f, 0.33333334f}) {
    const float back = std::strtof(JsonFloat(v).c_str(), nullptr);
    EXPECT_EQ(0, std::memcmp(&v, &back, sizeof(float))) << JsonFloat(v);
  }
}

TEST(ProtocolTest, ResponsesAreValidJson) {
  const std::vector<CellVerdict> verdicts = {{0.75f, true}, {0.25f, false}};
  auto ok = JsonValue::Parse(OkDetectResponse("r9", verdicts));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetString("status"), "OK");
  EXPECT_EQ(ok->GetString("id"), "r9");
  ASSERT_TRUE(ok->Find("results")->is_array());
  EXPECT_EQ(ok->Find("results")->items().size(), 2u);

  auto err = JsonValue::Parse(
      ErrorResponse("", Status::Overloaded("queue \"full\"\n")));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->GetString("status"), "OVERLOADED");
  EXPECT_TRUE(err->Find("id")->is_null());
  EXPECT_EQ(err->GetString("message"), "queue \"full\"\n");  // escapes held
}

// ----------------------------------------------------------------- Registry

TEST(RegistryTest, AddGetUnloadNames) {
  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0);
  ASSERT_TRUE(registry.Add("b", MakeTinyDetector()).ok());
  ASSERT_TRUE(registry.Add("a", MakeTinyDetector()).ok());
  EXPECT_EQ(registry.size(), 2);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(registry.Get("a"), nullptr);
  EXPECT_EQ(registry.Get("missing"), nullptr);

  // A handle taken before Unload keeps the detector alive.
  auto held = registry.Get("a");
  ASSERT_TRUE(registry.Unload("a").ok());
  EXPECT_EQ(registry.Get("a"), nullptr);
  EXPECT_EQ(held->n_attrs(), 3);
  EXPECT_EQ(registry.Unload("a").code(), StatusCode::kNotFound);
}

TEST(RegistryTest, PutReplacesInPlace) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", MakeTinyDetector()).ok());
  const auto before = registry.Get("m");
  auto replacement =
      std::make_shared<const LoadedDetector>(MakeTinyDetector());
  registry.Put("m", replacement);
  EXPECT_EQ(registry.Get("m"), replacement);
  EXPECT_NE(registry.Get("m"), before);
  EXPECT_EQ(registry.size(), 1);
  // Put also creates entries that never existed.
  registry.Put("fresh", replacement);
  EXPECT_EQ(registry.size(), 2);
}

// ------------------------------------------------------------------- Bundle

TEST(BundleTest, SaveLoadRoundTripIsBitExact) {
  const std::string dir = TempDir("birnn_bundle_roundtrip");
  core::TrainedDetector trained = MakeTinyTrained();

  // Predictions of the in-memory detector before any disk round trip.
  const std::vector<CellQuery> queries = MakeQueries(24);
  ASSERT_TRUE(SaveDetectorBundle(trained, dir).ok());
  auto original = MakeLoadedDetector(std::move(trained));
  ASSERT_TRUE(original.ok());
  std::vector<CellVerdict> before;
  {
    MicroBatcher batcher(*original);
    ASSERT_TRUE(batcher.Detect(queries, &before).ok());
  }

  auto loaded = LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->attr_names(), original->attr_names());
  EXPECT_EQ(loaded->config().max_len, original->config().max_len);
  std::vector<CellVerdict> after;
  {
    MicroBatcher batcher(*loaded);
    ASSERT_TRUE(batcher.Detect(queries, &after).ok());
  }
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&before[i].p_error, &after[i].p_error,
                             sizeof(float)))
        << "cell " << i;
    EXPECT_EQ(before[i].is_error, after[i].is_error);
  }
  std::filesystem::remove_all(dir);
}

TEST(BundleTest, MemoPreSizeHintsSurviveTheManifestRoundTrip) {
  // The batcher pre-sizes its verdict memo from the bundle's training-table
  // unique-cell count; both optional manifest keys must round-trip.
  const std::string dir = TempDir("birnn_bundle_presize");
  core::TrainedDetector trained = MakeTinyTrained();
  trained.train_unique_cells = 1234;
  trained.content_fingerprint = 0xDEADBEEFCAFEF00DULL;
  ASSERT_TRUE(SaveDetectorBundle(trained, dir).ok());
  auto loaded = LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(1234, loaded->expected_unique_cells());
  EXPECT_EQ(0xDEADBEEFCAFEF00DULL, loaded->content_fingerprint());
  std::filesystem::remove_all(dir);
}

TEST(BundleTest, LoadFailsCleanlyOnBadInput) {
  EXPECT_FALSE(LoadDetectorBundle("/nonexistent/bundle/dir").ok());

  const std::string dir = TempDir("birnn_bundle_bad");
  std::filesystem::create_directory(dir);
  {
    std::ofstream out(dir + "/manifest.txt");
    out << "not-a-bundle 1\n";
  }
  EXPECT_FALSE(LoadDetectorBundle(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(BundleTest, EncodeQueriesReplicatesPreparePipeline) {
  const LoadedDetector detector = MakeTinyDetector();
  // "  abc" -> trimmed to "abc"; attr 0's training max length is 8, so
  // length_norm must be 3/8 computed in float.
  CellQuery q;
  q.attr = 0;
  q.value = "  abc";
  auto ds = detector.EncodeQueries({q});
  ASSERT_TRUE(ds.ok());
  EXPECT_FLOAT_EQ(ds->length_norm[0], 3.0f / 8.0f);
  EXPECT_EQ(ds->effective_len(0), 3);

  // By-name resolution and unknown characters mapping to the unknown index.
  CellQuery named;
  named.attr_name = "name";
  named.value = "\x01\x02";
  auto ds2 = detector.EncodeQueries({named});
  ASSERT_TRUE(ds2.ok());
  EXPECT_EQ(ds2->attrs[0], 1);
  // Unknown chars encode to the dedicated unknown id, not pad.
  EXPECT_NE(ds2->seq_at(0, 0), 0);
}

// ------------------------------------------------------------------- Server

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  return fd;
}

// Sends one request line and reads one '\n'-terminated response line.
std::string RoundTrip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  EXPECT_EQ(static_cast<ssize_t>(framed.size()),
            ::write(fd, framed.data(), framed.size()));
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    response.push_back(c);
  }
  return response;
}

TEST(ServerTest, EndToEndOverSockets) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // The same queries answered in-process as the reference.
  const std::vector<CellQuery> queries = MakeQueries(6);
  std::vector<CellVerdict> reference;
  {
    const LoadedDetector detector = MakeTinyDetector();
    MicroBatcher batcher(detector);
    ASSERT_TRUE(batcher.Detect(queries, &reference).ok());
  }

  const int fd = ConnectTo(server.port());

  auto pong = JsonValue::Parse(RoundTrip(fd, R"({"id":"p","op":"ping"})"));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->GetString("status"), "OK");
  EXPECT_EQ(pong->GetString("id"), "p");

  auto models = JsonValue::Parse(RoundTrip(fd, R"({"op":"models"})"));
  ASSERT_TRUE(models.ok());
  ASSERT_TRUE(models->Find("models")->is_array());
  EXPECT_EQ(models->Find("models")->items()[0].as_string(), "tiny");

  // Detect — "model" may be omitted with a single hosted model. The wire
  // p_error must recover the in-process float bit for bit (%.9g encoding).
  std::string request = R"({"id":"d1","cells":[)";
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i > 0) request += ",";
    request += R"({"attr":)" + std::to_string(queries[i].attr) +
               R"(,"value":")" + queries[i].value + R"("})";
  }
  request += "]}";
  auto detect = JsonValue::Parse(RoundTrip(fd, request));
  ASSERT_TRUE(detect.ok());
  ASSERT_EQ(detect->GetString("status"), "OK");
  const std::vector<JsonValue>& results = detect->Find("results")->items();
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const float wire =
        static_cast<float>(results[i].GetNumber("p_error", -1.0));
    EXPECT_EQ(0, std::memcmp(&wire, &reference[i].p_error, sizeof(float)))
        << "cell " << i << ": wire " << wire << " vs "
        << reference[i].p_error;
    EXPECT_EQ(results[i].Find("error")->as_bool(), reference[i].is_error);
  }

  auto stats = JsonValue::Parse(RoundTrip(fd, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->GetString("model"), "tiny");
  EXPECT_EQ(stats->GetNumber("cells"), 6.0);

  // Error paths: unknown model, bad JSON (answered with a null id).
  auto notfound = JsonValue::Parse(
      RoundTrip(fd, R"({"op":"detect","model":"nope","cells":[]})"));
  ASSERT_TRUE(notfound.ok());
  EXPECT_EQ(notfound->GetString("status"), "NOT_FOUND");
  auto bad = JsonValue::Parse(RoundTrip(fd, "garbage {"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->GetString("status"), "INVALID_ARGUMENT");
  EXPECT_TRUE(bad->Find("id")->is_null());

  ::close(fd);
  server.Shutdown();
}

TEST(ServerTest, OverCapacityDetectIsShedWithOverloaded) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  ServerOptions options;
  options.batcher.queue_capacity = 2;  // a 3-cell request can never fit
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  auto shed = JsonValue::Parse(RoundTrip(
      fd,
      R"({"id":"s","cells":[{"attr":0,"value":"a"},{"attr":1,"value":"b"},)"
      R"({"attr":2,"value":"c"}]})"));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->GetString("status"), "OVERLOADED");
  EXPECT_EQ(shed->GetString("id"), "s");

  // The connection survives a shed; a within-capacity request succeeds.
  auto ok = JsonValue::Parse(
      RoundTrip(fd, R"({"cells":[{"attr":0,"value":"a"}]})"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetString("status"), "OK");
  ::close(fd);
  server.Shutdown();
}

TEST(ServerTest, ShutdownWithIdleConnectionsIsGraceful) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  auto server = std::make_unique<Server>(&registry);
  ASSERT_TRUE(server->Start().ok());

  const int fd = ConnectTo(server->port());
  auto pong = JsonValue::Parse(RoundTrip(fd, R"({"op":"ping"})"));
  ASSERT_TRUE(pong.ok());

  // Shutdown with the connection idle: must not hang, and the client sees a
  // clean EOF rather than a reset mid-response.
  server->Shutdown();
  server.reset();
  char c = 0;
  EXPECT_EQ(0, ::read(fd, &c, 1));
  ::close(fd);
}

TEST(ServerTest, StartFailsOnEmptyRegistry) {
  ModelRegistry registry;
  Server server(&registry);
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------- Served vs offline bit-identity

TEST(ServeDetectorTest, ServedVerdictsMatchOfflineReport) {
  // Train a small detector the offline way, bundle it through disk, serve
  // it, and ask the served detector about every cell of the table. The
  // served verdicts must reproduce the offline report's predictions exactly
  // — the acceptance invariant of the serve subsystem.
  datagen::GenOptions gen;
  gen.scale = 0.08;
  gen.seed = 5;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);

  core::DetectorOptions options;
  options.model = "etsb";
  options.n_label_tuples = 12;
  options.units = 16;
  options.char_emb_dim = 8;
  options.trainer.epochs = 10;
  options.seed = 11;
  core::ErrorDetector detector(options);
  core::TrainedDetector trained;
  auto report = detector.Run(pair.dirty, pair.clean, &trained);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_NE(trained.model, nullptr);

  const std::string dir = TempDir("birnn_served_vs_offline");
  ASSERT_TRUE(SaveDetectorBundle(trained, dir).ok());
  auto loaded = LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const int n_attrs = pair.dirty.num_columns();
  const int n_rows = static_cast<int>(pair.dirty.num_rows());
  MicroBatcher batcher(*loaded);
  int64_t checked = 0;
  for (int r = 0; r < n_rows; ++r) {
    std::vector<CellQuery> row;
    for (int a = 0; a < n_attrs; ++a) {
      CellQuery q;
      q.attr = a;
      q.value = pair.dirty.cell(r, a);
      row.push_back(std::move(q));
    }
    std::vector<CellVerdict> verdicts;
    ASSERT_TRUE(batcher.Detect(row, &verdicts).ok());
    ASSERT_EQ(verdicts.size(), static_cast<size_t>(n_attrs));
    for (int a = 0; a < n_attrs; ++a) {
      const uint8_t offline =
          report->predicted[static_cast<size_t>(r) * n_attrs + a];
      ASSERT_EQ(verdicts[static_cast<size_t>(a)].is_error, offline != 0)
          << "cell (" << r << "," << a << ") value '" << pair.dirty.cell(r, a)
          << "'";
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<int64_t>(n_rows) * n_attrs);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace birnn::serve
