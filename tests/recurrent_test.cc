#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/recurrent.h"

namespace birnn::nn {
namespace {

TEST(CellTypeTest, NamesAndParsing) {
  EXPECT_STREQ(CellTypeName(CellType::kVanilla), "rnn");
  EXPECT_STREQ(CellTypeName(CellType::kGru), "gru");
  EXPECT_STREQ(CellTypeName(CellType::kLstm), "lstm");
  EXPECT_EQ(*ParseCellType("RNN"), CellType::kVanilla);
  EXPECT_EQ(*ParseCellType("vanilla"), CellType::kVanilla);
  EXPECT_EQ(*ParseCellType("gru"), CellType::kGru);
  EXPECT_EQ(*ParseCellType("LSTM"), CellType::kLstm);
  EXPECT_FALSE(ParseCellType("transformer").ok());
}

TEST(RecurrentCellTest, WeightShapesPerFamily) {
  Rng rng(1);
  RecurrentCell rnn(CellType::kVanilla, "r", 5, 7, &rng);
  RecurrentCell gru(CellType::kGru, "g", 5, 7, &rng);
  RecurrentCell lstm(CellType::kLstm, "l", 5, 7, &rng);
  EXPECT_EQ(CountWeights(rnn.Params()), 5u * 7 + 7u * 7 + 7);
  EXPECT_EQ(CountWeights(gru.Params()), 3u * (5 * 7 + 7 * 7 + 7));
  EXPECT_EQ(CountWeights(lstm.Params()), 4u * (5 * 7 + 7 * 7 + 7));
}

TEST(RecurrentCellTest, LstmForgetBiasIsOne) {
  Rng rng(2);
  RecurrentCell lstm(CellType::kLstm, "l", 3, 4, &rng);
  const Parameter* bias = lstm.Params()[2];
  ASSERT_EQ(bias->name, "l/b");
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ((*bias).value[static_cast<size_t>(4 + j)], 1.0f);  // f
    EXPECT_FLOAT_EQ((*bias).value[static_cast<size_t>(j)], 0.0f);      // i
  }
}

TEST(RecurrentCellTest, VanillaMatchesRnnCellMath) {
  // The vanilla RecurrentCell and the classic RnnCell implement identical
  // math; copy weights over and compare one step.
  Rng rng(3);
  RecurrentCell cell(CellType::kVanilla, "c", 4, 6, &rng);
  Rng rng2(3);
  RnnCell classic("c", 4, 6, &rng2);  // same seed -> same init draws
  Tensor x(2, 4);
  Rng data_rng(4);
  NormalInit(&x, 1.0f, &data_rng);
  RecurrentTensors state = cell.InitialTensors(2);
  RecurrentTensors next;
  cell.StepForward(x, state, &next);
  Tensor h(2, 6);
  Tensor classic_out;
  classic.StepForward(x, h, &classic_out);
  EXPECT_TRUE(next.h.AllClose(classic_out, 1e-6f));
}

class RecurrentFamilyTest : public ::testing::TestWithParam<CellType> {};

TEST_P(RecurrentFamilyTest, GraphStepMatchesForwardOnly) {
  const CellType type = GetParam();
  Rng rng(5);
  RecurrentCell cell(type, "c", 3, 5, &rng);
  Tensor x(2, 3);
  Rng data_rng(6);
  NormalInit(&x, 1.0f, &data_rng);

  RecurrentTensors direct_state = cell.InitialTensors(2);
  RecurrentTensors direct;
  cell.StepForward(x, direct_state, &direct);

  Graph g;
  auto bound = cell.Bind(&g);
  RecurrentState state = cell.InitialState(&g, 2);
  RecurrentState next = bound.Step(g.Input(x), state);
  EXPECT_TRUE(g.value(next.h).AllClose(direct.h, 1e-5f));
  if (type == CellType::kLstm) {
    EXPECT_TRUE(g.value(next.c).AllClose(direct.c, 1e-5f));
  }
}

TEST_P(RecurrentFamilyTest, OutputsBounded) {
  const CellType type = GetParam();
  Rng rng(7);
  RecurrentCell cell(type, "c", 2, 4, &rng);
  Tensor x = Tensor::Full({1, 2}, 50.0f);
  RecurrentTensors state = cell.InitialTensors(1);
  RecurrentTensors next;
  cell.StepForward(x, state, &next);
  for (size_t i = 0; i < next.h.size(); ++i) {
    EXPECT_LE(std::fabs(next.h[i]), 1.0f + 1e-5f);
  }
}

TEST_P(RecurrentFamilyTest, GradientCheckThroughTwoSteps) {
  const CellType type = GetParam();
  Rng rng(8);
  RecurrentCell cell(type, "c", 2, 3, &rng);
  std::vector<Tensor> steps(2, Tensor(2, 2));
  Rng data_rng(9);
  for (auto& s : steps) NormalInit(&s, 0.7f, &data_rng);

  auto loss_fn = [&](bool with_backward) {
    Graph g;
    auto bound = cell.Bind(&g);
    RecurrentState state = cell.InitialState(&g, 2);
    for (const auto& s : steps) state = bound.Step(g.Input(s), state);
    Graph::Var logits = g.MatMul(
        state.h, g.Input(Tensor::FromMatrix(3, 2, {0.4f, -0.3f, 0.2f, 0.5f,
                                                   -0.1f, 0.3f})));
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, {0, 1});
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(10);
  GradCheckResult result = CheckParameterGradients(
      cell.Params(), loss_fn, &check_rng, 1e-3f, 3e-2f, 8);
  EXPECT_TRUE(result.ok) << CellTypeName(type) << " "
                         << result.max_rel_diff;
}

TEST_P(RecurrentFamilyTest, StackedSequenceForwardMatchesGraph) {
  const CellType type = GetParam();
  Rng rng(11);
  StackedBiRecurrent stack(type, "s", 3, 4, 2, true, &rng);
  EXPECT_EQ(stack.output_dim(), 8);

  std::vector<Tensor> steps(4, Tensor(2, 3));
  Rng data_rng(12);
  for (auto& s : steps) NormalInit(&s, 1.0f, &data_rng);

  Tensor direct;
  stack.ApplyForward(steps, &direct);

  Graph g;
  std::vector<Graph::Var> vars;
  for (const auto& s : steps) vars.push_back(g.Input(s));
  Graph::Var out = stack.Apply(&g, vars, 2);
  EXPECT_TRUE(g.value(out).AllClose(direct, 1e-5f));
}

TEST_P(RecurrentFamilyTest, LearnsLastTokenParity) {
  // Toy sequence task: label = whether the last step's first input is
  // positive. All three families must solve it.
  const CellType type = GetParam();
  Rng rng(13);
  StackedBiRecurrent stack(type, "s", 2, 6, 1, true, &rng);
  Dense head("h", stack.output_dim(), 2, Dense::Activation::kNone, &rng);

  std::vector<Parameter*> params = stack.Params();
  for (auto* p : head.Params()) params.push_back(p);

  // Fixed batch of 16 random sequences, length 5.
  Rng data_rng(14);
  const int batch = 16;
  std::vector<Tensor> steps(5, Tensor(batch, 2));
  for (auto& s : steps) NormalInit(&s, 1.0f, &data_rng);
  std::vector<int> labels(batch);
  for (int i = 0; i < batch; ++i) {
    labels[static_cast<size_t>(i)] = steps[4].at(i, 0) > 0 ? 1 : 0;
  }

  RmsProp opt(0.01f);
  float loss_value = 0;
  for (int it = 0; it < 150; ++it) {
    Graph g;
    std::vector<Graph::Var> vars;
    for (const auto& s : steps) vars.push_back(g.Input(s));
    Graph::Var features = stack.Apply(&g, vars, batch);
    Graph::Var logits = head.Bind(&g).Apply(features);
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, labels);
    ZeroGrads(params);
    g.Backward(loss);
    opt.Step(params);
    loss_value = g.value(loss).scalar();
  }
  EXPECT_LT(loss_value, 0.15f) << CellTypeName(type);
}

INSTANTIATE_TEST_SUITE_P(
    Families, RecurrentFamilyTest,
    ::testing::Values(CellType::kVanilla, CellType::kGru, CellType::kLstm),
    [](const ::testing::TestParamInfo<CellType>& info) {
      return CellTypeName(info.param);
    });

TEST(SliceColsTest, ForwardAndGradient) {
  Graph g;
  Graph::Var x = g.Input(Tensor::FromMatrix(2, 4, {1, 2, 3, 4, 5, 6, 7, 8}));
  Graph::Var mid = g.SliceCols(x, 1, 2);
  EXPECT_EQ(g.value(mid).cols(), 2);
  EXPECT_FLOAT_EQ(g.value(mid).at(0, 0), 2);
  EXPECT_FLOAT_EQ(g.value(mid).at(1, 1), 7);

  // Gradient: only the sliced columns receive gradient.
  Rng rng(15);
  Parameter p("p", Tensor(2, 4));
  NormalInit(&p.value, 0.5f, &rng);
  auto loss_fn = [&](bool with_backward) {
    Graph graph;
    Graph::Var slice = graph.SliceCols(graph.Param(&p), 1, 2);
    Graph::Var logits = graph.MatMul(
        graph.Tanh(slice),
        graph.Input(Tensor::FromMatrix(2, 2, {0.3f, -0.2f, 0.4f, 0.1f})));
    Graph::Var loss = graph.SoftmaxCrossEntropy(logits, {0, 1});
    if (with_backward) graph.Backward(loss);
    return graph.value(loss).scalar();
  };
  Rng check_rng(16);
  GradCheckResult result =
      CheckParameterGradients({&p}, loss_fn, &check_rng, 1e-3f, 2e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_diff;
  // Untouched columns must have exactly zero gradient.
  ZeroGrads({&p});
  loss_fn(true);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(p.grad.at(i, 0), 0.0f);
    EXPECT_FLOAT_EQ(p.grad.at(i, 3), 0.0f);
  }
}

}  // namespace
}  // namespace birnn::nn
