// Error-signature tests for the remaining generators (movies, rayyan, tax)
// plus runner-level coverage of the repeated-baseline harness paths — the
// §5.1/§5.5 signatures the character models key on must actually appear in
// the generated data.

#include <gtest/gtest.h>

#include <set>

#include "datagen/datasets.h"
#include "eval/runner.h"
#include "util/string_util.h"

namespace birnn::datagen {
namespace {

/// Collects (clean, dirty) pairs for all corrupted cells of a column.
std::vector<std::pair<std::string, std::string>> CorruptedCells(
    const DatasetPair& pair, const char* column) {
  const int col = pair.clean.ColumnIndex(column);
  EXPECT_GE(col, 0) << column;
  std::vector<std::pair<std::string, std::string>> out;
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    if (pair.dirty.cell(r, col) != pair.clean.cell(r, col)) {
      out.emplace_back(pair.clean.cell(r, col), pair.dirty.cell(r, col));
    }
  }
  return out;
}

TEST(MoviesSignatureTest, DurationMissingValuesAreNaN) {
  GenOptions gen;
  gen.scale = 0.05;
  const DatasetPair pair = MakeMovies(gen);
  for (const auto& [clean, dirty] : CorruptedCells(pair, "duration")) {
    EXPECT_EQ(dirty, "NaN") << clean;
    EXPECT_TRUE(EndsWith(clean, " min"));
  }
}

TEST(MoviesSignatureTest, RatingCountGetsThousandsSeparators) {
  GenOptions gen;
  gen.scale = 0.1;
  const DatasetPair pair = MakeMovies(gen);
  for (const auto& [clean, dirty] : CorruptedCells(pair, "rating_count")) {
    EXPECT_NE(dirty.find(','), std::string::npos) << clean << "->" << dirty;
    // Removing the commas restores the clean value.
    std::string stripped;
    for (char c : dirty) {
      if (c != ',') stripped += c;
    }
    EXPECT_EQ(stripped, clean);
  }
}

TEST(MoviesSignatureTest, CreatorLosesLeadingParts) {
  GenOptions gen;
  gen.scale = 0.1;
  const DatasetPair pair = MakeMovies(gen);
  for (const auto& [clean, dirty] : CorruptedCells(pair, "creator")) {
    // 'Roger Kumble' instead of 'Choderlos de Laclos, Roger Kumble': the
    // dirty value is a suffix of the clean one.
    EXPECT_TRUE(clean.size() > dirty.size() &&
                clean.substr(clean.size() - dirty.size()) == dirty)
        << clean << " -> " << dirty;
  }
}

TEST(RayyanSignatureTest, PaginationDropsSharedPrefix) {
  GenOptions gen;
  gen.scale = 0.3;
  const DatasetPair pair = MakeRayyan(gen);
  for (const auto& [clean, dirty] :
       CorruptedCells(pair, "article_pagination")) {
    // '70-76' -> '70-6': same start page, truncated end page.
    const std::string clean_start = clean.substr(0, clean.find('-'));
    const std::string dirty_start = dirty.substr(0, dirty.find('-'));
    EXPECT_EQ(clean_start, dirty_start) << clean << " -> " << dirty;
    EXPECT_LT(dirty.size(), clean.size());
  }
}

TEST(RayyanSignatureTest, IssueSwapsOrGoesMissing) {
  GenOptions gen;
  gen.scale = 0.3;
  const DatasetPair pair = MakeRayyan(gen);
  int missing = 0;
  int swapped = 0;
  for (const auto& [clean, dirty] : CorruptedCells(pair, "journal_issue")) {
    if (dirty.empty() || dirty == "NaN") {
      ++missing;
    } else if (dirty.find('-') != std::string::npos) {
      // 'Mar-22' <-> '22-Mar': both halves preserved.
      const size_t cd = clean.find('-');
      const size_t dd = dirty.find('-');
      EXPECT_EQ(clean.substr(0, cd), dirty.substr(dd + 1));
      ++swapped;
    }
  }
  EXPECT_GT(missing + swapped, 0);
}

TEST(TaxSignatureTest, CleanZipsAreFiveDigits) {
  GenOptions gen;
  gen.scale = 0.001;
  const DatasetPair pair = MakeTax(gen);
  const int zip = pair.clean.ColumnIndex("zip");
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    EXPECT_EQ(pair.clean.cell(r, zip).size(), 5u);
    EXPECT_TRUE(IsAllDigits(pair.clean.cell(r, zip)));
  }
}

TEST(TaxSignatureTest, CleanRatesAreWholePercentages) {
  GenOptions gen;
  gen.scale = 0.001;
  const DatasetPair pair = MakeTax(gen);
  const int rate = pair.clean.ColumnIndex("rate");
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    EXPECT_TRUE(IsAllDigits(pair.clean.cell(r, rate)))
        << pair.clean.cell(r, rate);
  }
}

TEST(TaxSignatureTest, MaritalChildConsistencyInCleanData) {
  // The FD the VAD errors violate must hold in the clean table:
  // has_child == "Y" implies marital_status == "M" and child_exemp > 0.
  GenOptions gen;
  gen.scale = 0.002;
  const DatasetPair pair = MakeTax(gen);
  const int marital = pair.clean.ColumnIndex("marital_status");
  const int child = pair.clean.ColumnIndex("has_child");
  const int exemp = pair.clean.ColumnIndex("child_exemp");
  for (int r = 0; r < pair.clean.num_rows(); ++r) {
    if (pair.clean.cell(r, child) == "Y") {
      EXPECT_EQ(pair.clean.cell(r, marital), "M");
      EXPECT_NE(pair.clean.cell(r, exemp), "0");
    } else {
      EXPECT_EQ(pair.clean.cell(r, exemp), "0");
    }
  }
}

}  // namespace
}  // namespace birnn::datagen

namespace birnn::eval {
namespace {

TEST(RunnerBaselineTest, RepeatedRahaAggregates) {
  datagen::GenOptions gen;
  gen.scale = 0.08;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  const RepeatedResult result = RunRepeatedRaha(pair, 2, 15, 500);
  EXPECT_EQ(result.system, "Raha");
  EXPECT_EQ(result.dataset, "hospital");
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_GT(result.f1.mean, 0.3);
  EXPECT_GT(result.train_seconds.mean, 0.0);
}

TEST(RunnerBaselineTest, RepeatedRotomAggregatesBothVariants) {
  datagen::GenOptions gen;
  gen.scale = 0.08;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  const RepeatedResult plain = RunRepeatedRotom(pair, 2, 150, false, 600);
  const RepeatedResult ssl = RunRepeatedRotom(pair, 2, 150, true, 600);
  EXPECT_EQ(plain.system, "Rotom");
  EXPECT_EQ(ssl.system, "Rotom+SSL");
  EXPECT_EQ(plain.runs.size(), 2u);
  EXPECT_EQ(ssl.runs.size(), 2u);
  EXPECT_GT(plain.f1.mean, 0.2);
}

}  // namespace
}  // namespace birnn::eval
