#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "util/threadpool.h"

namespace birnn {
namespace {

TEST(ThreadPoolTest, InlineModeRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  int counter = 0;
  pool.Submit([&counter] { ++counter; });
  EXPECT_EQ(counter, 1);  // ran synchronously
  pool.Wait();
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SubmitBulkRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 128; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.SubmitBulk(std::move(tasks));
  pool.Wait();
  EXPECT_EQ(counter.load(), 128);
}

TEST(ThreadPoolTest, SubmitBulkInlineModeRunsInSubmissionOrder) {
  ThreadPool pool(0);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  pool.SubmitBulk(std::move(tasks));
  ASSERT_EQ(order.size(), 10u);  // ran synchronously
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitBulkEmptyIsNoOp) {
  ThreadPool pool(2);
  pool.SubmitBulk({});
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitBulkMixesWithSubmit) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.SubmitBulk(std::move(tasks));
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInline) {
  ThreadPool pool(0);
  int64_t sum = 0;
  pool.ParallelFor(10, [&sum](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must wait
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelPredictTest, MatchesSequentialPredictions) {
  // Parallel inference must be positionally identical to sequential.
  data::Table dirty(std::vector<std::string>{"a", "b"});
  data::Table clean(std::vector<std::string>{"a", "b"});
  Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    const std::string v = "val" + std::to_string(i % 11);
    ASSERT_TRUE(
        dirty.AppendRow({rng.Bernoulli(0.4) ? v + "x" : v, "z"}).ok());
    ASSERT_TRUE(clean.AppendRow({v, "z"}).ok());
  }
  auto frame = data::PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  const data::EncodedDataset ds = data::EncodeCells(*frame, chars);

  core::ModelConfig config;
  config.vocab = ds.vocab;
  config.max_len = ds.max_len;
  config.n_attrs = ds.n_attrs;
  config.units = 8;
  config.char_emb_dim = 6;
  config.enriched = true;
  config.seed = 2;
  core::ErrorDetectionModel model(config);

  std::vector<uint8_t> sequential;
  core::PredictDataset(model, ds, 7, &sequential);

  ThreadPool pool(3);
  std::vector<uint8_t> parallel;
  core::PredictDataset(model, ds, 7, &parallel, &pool);
  EXPECT_EQ(sequential, parallel);

  ThreadPool inline_pool(0);
  std::vector<uint8_t> inline_result;
  core::PredictDataset(model, ds, 7, &inline_result, &inline_pool);
  EXPECT_EQ(sequential, inline_result);
}

}  // namespace
}  // namespace birnn
