// Determinism and correctness of the data-parallel trainer: the shard
// partition is a function of batch size and grad_shard_cells only, so every
// value of train_threads must produce bit-identical weights and history.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "util/threadpool.h"

namespace birnn::core {
namespace {

struct FitResult {
  ModelSnapshot snapshot;
  TrainHistory history;
};

void MakeHospitalData(data::EncodedDataset* train, data::EncodedDataset* test,
                      ModelConfig* config) {
  datagen::GenOptions gen;
  gen.scale = 0.03;
  gen.seed = 11;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  ASSERT_TRUE(frame.ok());
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  const data::EncodedDataset all = data::EncodeCells(*frame, chars);
  std::vector<int64_t> train_ids;
  for (int64_t i = 0; i < 6; ++i) train_ids.push_back(i);
  data::SplitByRowIds(all, train_ids, train, test);
  ASSERT_GT(train->num_cells(), 0);
  ASSERT_GT(test->num_cells(), 0);

  *config = ModelConfig();
  config->vocab = all.vocab;
  config->max_len = all.max_len;
  config->n_attrs = all.n_attrs;
  config->char_emb_dim = 6;
  config->units = 10;
  config->enriched = true;
  config->attr_emb_dim = 4;
  config->attr_units = 4;
  config->length_dense_dim = 6;
  config->hidden_dense_dim = 8;
  config->seed = 21;
}

FitResult FitWithThreads(const data::EncodedDataset& train,
                         const data::EncodedDataset& test,
                         const ModelConfig& config, int train_threads) {
  ErrorDetectionModel model(config);
  TrainerOptions options;
  options.epochs = 3;
  options.seed = 17;
  options.train_threads = train_threads;
  // Small shards so even the tiny test batches split into several; the
  // partition is identical for every thread count.
  options.grad_shard_cells = 16;
  options.track_test_accuracy = true;
  options.eval_batch = 32;
  Trainer trainer(options);
  FitResult result;
  result.history = trainer.Fit(&model, train, &test);
  result.snapshot = model.Snapshot();
  return result;
}

bool BitIdentical(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void ExpectSameRun(const FitResult& a, const FitResult& b) {
  // Weights + batch-norm running statistics, bit for bit.
  ASSERT_EQ(a.snapshot.params.size(), b.snapshot.params.size());
  for (size_t i = 0; i < a.snapshot.params.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a.snapshot.params[i], b.snapshot.params[i]))
        << "parameter " << i << " differs";
  }
  EXPECT_TRUE(BitIdentical(a.snapshot.bn_mean, b.snapshot.bn_mean));
  EXPECT_TRUE(BitIdentical(a.snapshot.bn_var, b.snapshot.bn_var));

  // History, excluding wall-clock time.
  EXPECT_EQ(a.history.best_epoch, b.history.best_epoch);
  EXPECT_EQ(a.history.best_train_loss, b.history.best_train_loss);
  ASSERT_EQ(a.history.epochs.size(), b.history.epochs.size());
  for (size_t e = 0; e < a.history.epochs.size(); ++e) {
    EXPECT_EQ(a.history.epochs[e].train_loss, b.history.epochs[e].train_loss);
    EXPECT_EQ(a.history.epochs[e].train_accuracy,
              b.history.epochs[e].train_accuracy);
    EXPECT_EQ(a.history.epochs[e].test_accuracy,
              b.history.epochs[e].test_accuracy);
    EXPECT_EQ(a.history.epochs[e].has_test, b.history.epochs[e].has_test);
  }
}

TEST(ParallelTrainerTest, TrainThreadsAreBitIdentical) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeHospitalData(&train, &test, &config);

  const FitResult inline_run = FitWithThreads(train, test, config, 0);
  const FitResult one_thread = FitWithThreads(train, test, config, 1);
  const FitResult four_threads = FitWithThreads(train, test, config, 4);

  ExpectSameRun(inline_run, one_thread);
  ExpectSameRun(inline_run, four_threads);
}

TEST(ParallelTrainerTest, FitIsRepeatable) {
  // Same options twice -> same bits (guards against hidden global state).
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeHospitalData(&train, &test, &config);

  const FitResult first = FitWithThreads(train, test, config, 2);
  const FitResult second = FitWithThreads(train, test, config, 2);
  ExpectSameRun(first, second);
}

TEST(ParallelTrainerTest, TrainingMakesProgress) {
  // The sharded loss path still reports a decreasing weighted batch loss.
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeHospitalData(&train, &test, &config);

  ErrorDetectionModel model(config);
  TrainerOptions options;
  options.epochs = 8;
  options.seed = 17;
  options.train_threads = 2;
  options.grad_shard_cells = 16;
  Trainer trainer(options);
  const TrainHistory history = trainer.Fit(&model, train, &test);
  ASSERT_EQ(history.epochs.size(), 8u);
  EXPECT_LT(history.epochs.back().train_loss,
            history.epochs.front().train_loss);
}

TEST(ParallelTrainerTest, DatasetAccuracyPoolMatchesSerial) {
  data::EncodedDataset train;
  data::EncodedDataset test;
  ModelConfig config;
  MakeHospitalData(&train, &test, &config);
  ErrorDetectionModel model(config);

  const double serial = DatasetAccuracy(model, test, 7, {});
  ThreadPool pool(3);
  const double pooled = DatasetAccuracy(model, test, 7, {}, &pool);
  EXPECT_EQ(serial, pooled);

  ThreadPool inline_pool(0);
  const double inline_pooled = DatasetAccuracy(model, test, 7, {}, &inline_pool);
  EXPECT_EQ(serial, inline_pooled);
}

}  // namespace
}  // namespace birnn::core
