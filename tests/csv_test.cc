#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.h"
#include "data/table.h"
#include "util/rng.h"

namespace birnn::data {
namespace {

StatusOr<Table> Parse(const std::string& text, const CsvOptions& opt = {}) {
  std::istringstream in(text);
  return ReadCsv(in, opt);
}

TEST(TableTest, BasicOperations) {
  Table t(std::vector<std::string>{"a", "b"});
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("zz"), -1);
  ASSERT_TRUE(t.AppendRow({"1", "2"}).ok());
  EXPECT_FALSE(t.AppendRow({"1"}).ok());
  EXPECT_EQ(t.cell(0, 1), "2");
  t.set_cell(0, 1, "x");
  EXPECT_EQ(t.cell(0, 1), "x");
  t.RenameColumn(0, "aa");
  EXPECT_EQ(t.ColumnIndex("aa"), 0);
  EXPECT_EQ(t.Column(1), (std::vector<std::string>{"x"}));
}

TEST(CsvTest, SimpleParse) {
  auto t = Parse("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->num_columns(), 3);
  EXPECT_EQ(t->column_names()[1], "b");
  EXPECT_EQ(t->cell(1, 2), "6");
}

TEST(CsvTest, QuotedFieldWithComma) {
  auto t = Parse("a,b\n\"x, y\",z\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 0), "x, y");
}

TEST(CsvTest, EscapedQuotes) {
  auto t = Parse("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 0), "he said \"hi\"");
}

TEST(CsvTest, EmbeddedNewlineInQuotes) {
  auto t = Parse("a,b\n\"line1\nline2\",z\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1);
  EXPECT_EQ(t->cell(0, 0), "line1\nline2");
}

TEST(CsvTest, CrlfLineEndings) {
  auto t = Parse("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 1), "2");
}

TEST(CsvTest, EmptyFields) {
  auto t = Parse("a,b,c\n,,\n1,,3\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 0), "");
  EXPECT_EQ(t->cell(1, 1), "");
  EXPECT_EQ(t->cell(1, 2), "3");
}

TEST(CsvTest, MissingFinalNewline) {
  auto t = Parse("a,b\n1,2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1);
  EXPECT_EQ(t->cell(0, 1), "2");
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_FALSE(Parse("a,b\n1,2,3\n").ok());
  EXPECT_FALSE(Parse("a,b\n1\n").ok());
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(Parse("a\n\"oops\n").ok());
}

TEST(CsvTest, EmptyInputFails) { EXPECT_FALSE(Parse("").ok()); }

TEST(CsvTest, HeaderOnlyIsEmptyTable) {
  auto t = Parse("a,b\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 0);
  EXPECT_EQ(t->num_columns(), 2);
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions opt;
  opt.has_header = false;
  auto t = Parse("1,2\n3,4\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->column_names()[0], "col0");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opt;
  opt.delimiter = ';';
  auto t = Parse("a;b\n1;2\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 1), "2");
}

TEST(CsvTest, WriteReadRoundtrip) {
  Table t(std::vector<std::string>{"name", "note"});
  ASSERT_TRUE(t.AppendRow({"plain", "with, comma"}).ok());
  ASSERT_TRUE(t.AppendRow({"quote\"inside", "multi\nline"}).ok());
  ASSERT_TRUE(t.AppendRow({"", "NaN"}).ok());

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(t));
}

TEST(CsvTest, FileRoundtrip) {
  Table t(std::vector<std::string>{"a"});
  ASSERT_TRUE(t.AppendRow({"x"}).ok());
  const std::string path = "/tmp/birnn_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(t));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

// Property: any table whose cells are drawn from a hostile alphabet
// (delimiters, quotes, newlines, unicode bytes) survives a write/read
// roundtrip bit-exactly.
class CsvRoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundtripProperty, RandomTableSurvivesRoundtrip) {
  birnn::Rng rng(GetParam());
  static constexpr char kAlphabet[] =
      "abz019 ,\"'\n\r\t;|\\\xc3\xa9\xe2\x82\xac";  // includes é and €
  const int cols = static_cast<int>(rng.UniformRange(1, 5));
  std::vector<std::string> headers;
  for (int c = 0; c < cols; ++c) headers.push_back("c" + std::to_string(c));
  Table t(headers);
  const int rows = static_cast<int>(rng.UniformRange(1, 20));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < cols; ++c) {
      std::string cell;
      const int len = static_cast<int>(rng.UniformRange(0, 12));
      for (int i = 0; i < len; ++i) {
        cell += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
      }
      row.push_back(std::move(cell));
    }
    ASSERT_TRUE(t.AppendRow(std::move(row)).ok());
  }

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(t)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, CsvRoundtripProperty,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace birnn::data
