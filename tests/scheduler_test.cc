// eval::Scheduler + eval::ArtifactCache: the determinism contract
// (parallel == serial, bit for bit), cache hit/invalidation semantics,
// and corrupted-entry recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/datasets.h"
#include "eval/cache.h"
#include "eval/runner.h"
#include "eval/scheduler.h"

namespace birnn::eval {
namespace {

datagen::DatasetPair SmallPair(uint64_t seed = 77) {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  gen.seed = seed;
  return datagen::MakeHospital(gen);
}

RunnerOptions SmallDetectorOptions() {
  RunnerOptions options;
  options.repetitions = 3;
  options.base_seed = 42;
  options.detector.n_label_tuples = 10;
  options.detector.units = 12;
  options.detector.trainer.epochs = 4;
  return options;
}

// A unique temp dir per test so caches never cross-contaminate.
class TempCacheDir {
 public:
  explicit TempCacheDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("birnn-scheduler-test-" + tag))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~TempCacheDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void ExpectBitIdentical(const RepeatedResult& a, const RepeatedResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].precision, b.runs[r].precision) << "rep " << r;
    EXPECT_EQ(a.runs[r].recall, b.runs[r].recall) << "rep " << r;
    EXPECT_EQ(a.runs[r].f1, b.runs[r].f1) << "rep " << r;
    EXPECT_EQ(a.runs[r].accuracy, b.runs[r].accuracy) << "rep " << r;
  }
  EXPECT_EQ(a.precision.mean, b.precision.mean);
  EXPECT_EQ(a.recall.mean, b.recall.mean);
  EXPECT_EQ(a.f1.mean, b.f1.mean);
  EXPECT_EQ(a.f1.stddev, b.f1.stddev);
}

TEST(ThreadBudgetTest, SplitsHardwareAcrossJobs) {
  // 8 hardware threads, 4 jobs in flight: each job owns 2 threads — the
  // job thread itself plus 1 inner worker.
  ThreadBudget b = ComputeThreadBudget(8, 4, 100);
  EXPECT_EQ(b.outer, 4);
  EXPECT_EQ(b.inner, 1);

  // More workers requested than jobs exist: outer clamps to n_jobs.
  b = ComputeThreadBudget(8, 16, 2);
  EXPECT_EQ(b.outer, 2);
  EXPECT_EQ(b.inner, 3);

  // Oversubscribed request: every job still gets at least itself.
  b = ComputeThreadBudget(2, 8, 8);
  EXPECT_EQ(b.outer, 8);
  EXPECT_EQ(b.inner, 0);

  // Serial mode.
  b = ComputeThreadBudget(8, 0, 10);
  EXPECT_EQ(b.outer, 0);
  EXPECT_EQ(b.inner, 0);
}

TEST(SchedulerTest, ParallelMatchesSerialBitForBit) {
  const datagen::DatasetPair pair = SmallPair();
  const RunnerOptions options = SmallDetectorOptions();

  // Reference: the serial path (threads = 0).
  Scheduler serial({.threads = 0});
  const Scheduler::ExperimentId sid = serial.SubmitDetector(pair, options);
  serial.RunAll();
  const RepeatedResult reference = serial.Take(sid);
  ASSERT_EQ(reference.runs.size(), 3u);

  for (const int threads : {1, 4, 8}) {
    Scheduler scheduler({.threads = threads});
    const Scheduler::ExperimentId id = scheduler.SubmitDetector(pair, options);
    scheduler.RunAll();
    const RepeatedResult result = scheduler.Take(id);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectBitIdentical(reference, result);
  }
}

TEST(SchedulerTest, BaselinesMatchSerialBitForBit) {
  const datagen::DatasetPair pair = SmallPair();

  Scheduler serial({.threads = 0});
  const auto raha_s = serial.SubmitRaha(pair, 2, 10, 7);
  const auto rotom_s = serial.SubmitRotom(pair, 2, 50, /*ssl=*/true, 7);
  serial.RunAll();
  const RepeatedResult raha_ref = serial.Take(raha_s);
  const RepeatedResult rotom_ref = serial.Take(rotom_s);

  Scheduler parallel({.threads = 4});
  const auto raha_p = parallel.SubmitRaha(pair, 2, 10, 7);
  const auto rotom_p = parallel.SubmitRotom(pair, 2, 50, /*ssl=*/true, 7);
  parallel.RunAll();
  ExpectBitIdentical(raha_ref, parallel.Take(raha_p));
  ExpectBitIdentical(rotom_ref, parallel.Take(rotom_p));
}

TEST(SchedulerTest, MatchesLegacyRunnerEntryPoints) {
  // RunRepeatedDetector is now a scheduler wrapper; its results must equal
  // a hand-driven serial scheduler run (same seeds, same aggregation).
  const datagen::DatasetPair pair = SmallPair();
  const RunnerOptions options = SmallDetectorOptions();

  const RepeatedResult via_runner = RunRepeatedDetector(pair, options);
  Scheduler scheduler({.threads = 0});
  const auto id = scheduler.SubmitDetector(pair, options);
  scheduler.RunAll();
  ExpectBitIdentical(via_runner, scheduler.Take(id));
}

TEST(SchedulerTest, WarmCacheHitsAreBitIdentical) {
  TempCacheDir dir("warm");
  const datagen::DatasetPair pair = SmallPair();
  const RunnerOptions options = SmallDetectorOptions();

  ArtifactCache cold_cache(dir.path());
  Scheduler cold({.threads = 2, .cache = &cold_cache});
  const auto cold_id = cold.SubmitDetector(pair, options);
  cold.RunAll();
  const RepeatedResult cold_result = cold.Take(cold_id);
  EXPECT_EQ(cold.stats().computed, 3);
  EXPECT_EQ(cold.stats().cache_hits, 0);

  ArtifactCache warm_cache(dir.path());
  Scheduler warm({.threads = 2, .cache = &warm_cache});
  const auto warm_id = warm.SubmitDetector(pair, options);
  warm.RunAll();
  const RepeatedResult warm_result = warm.Take(warm_id);
  EXPECT_EQ(warm.stats().computed, 0);
  EXPECT_EQ(warm.stats().cache_hits, 3);
  EXPECT_EQ(warm_result.cache_hits, 3);
  ExpectBitIdentical(cold_result, warm_result);
  // Warm hits replay the recorded train times bit-exactly too.
  EXPECT_EQ(cold_result.train_seconds.mean, warm_result.train_seconds.mean);
}

TEST(SchedulerTest, ThreadCountDoesNotChangeCacheKeys) {
  // A warm run with a different thread count must still hit: thread counts
  // are excluded from the config strings because they cannot change bits.
  core::DetectorOptions a;
  core::DetectorOptions b = a;
  b.train_threads = 8;
  b.eval_threads = 4;
  b.trainer.train_threads = 8;
  EXPECT_EQ(DetectorJobConfig(a), DetectorJobConfig(b));

  core::DetectorOptions c = a;
  c.trainer.epochs += 1;
  EXPECT_NE(DetectorJobConfig(a), DetectorJobConfig(c));
}

TEST(CacheTest, KeyDependsOnAllComponents) {
  const uint64_t base = ArtifactCache::Key(1, "cfg", 1);
  EXPECT_NE(base, ArtifactCache::Key(2, "cfg", 1));   // fingerprint
  EXPECT_NE(base, ArtifactCache::Key(1, "cfg2", 1));  // config
  EXPECT_NE(base, ArtifactCache::Key(1, "cfg", 2));   // schema version
  EXPECT_EQ(base, ArtifactCache::Key(1, "cfg", 1));   // stable
}

TEST(CacheTest, FingerprintTracksContent) {
  const datagen::DatasetPair a = SmallPair(1);
  const datagen::DatasetPair b = SmallPair(2);
  EXPECT_EQ(FingerprintPair(a), FingerprintPair(SmallPair(1)));
  EXPECT_NE(FingerprintPair(a), FingerprintPair(b));

  datagen::DatasetPair edited = SmallPair(1);
  edited.dirty.set_cell(0, 0, edited.dirty.cell(0, 0) + "x");
  EXPECT_NE(FingerprintPair(a), FingerprintPair(edited));
}

TEST(CacheTest, RoundTripsOutcomeBitExactly) {
  TempCacheDir dir("roundtrip");
  ArtifactCache cache(dir.path());

  JobOutcome outcome;
  outcome.ok = true;
  outcome.metrics.precision = 0.1 + 0.2;  // deliberately non-representable
  outcome.metrics.recall = 1.0 / 3.0;
  outcome.metrics.f1 = 0.7071067811865476;
  outcome.metrics.accuracy = 0.999999999999;
  outcome.train_seconds = 1.2345678901234567;
  outcome.train_cpu_seconds = 0.3333333333333333;
  core::EpochStats epoch;
  epoch.epoch = 3;
  epoch.train_loss = 0.123456789f;
  epoch.train_accuracy = 0.5;
  epoch.test_accuracy = 0.25;
  outcome.history.push_back(epoch);

  const uint64_t key = ArtifactCache::Key(123, "cfg");
  ASSERT_TRUE(cache.Store(key, outcome).ok());

  JobOutcome loaded;
  ASSERT_TRUE(cache.Lookup(key, &loaded));
  EXPECT_TRUE(loaded.ok);
  EXPECT_TRUE(loaded.from_cache);
  EXPECT_EQ(loaded.metrics.precision, outcome.metrics.precision);
  EXPECT_EQ(loaded.metrics.recall, outcome.metrics.recall);
  EXPECT_EQ(loaded.metrics.f1, outcome.metrics.f1);
  EXPECT_EQ(loaded.metrics.accuracy, outcome.metrics.accuracy);
  EXPECT_EQ(loaded.train_seconds, outcome.train_seconds);
  EXPECT_EQ(loaded.train_cpu_seconds, outcome.train_cpu_seconds);
  ASSERT_EQ(loaded.history.size(), 1u);
  EXPECT_EQ(loaded.history[0].epoch, 3);
  EXPECT_EQ(loaded.history[0].train_loss, epoch.train_loss);
  EXPECT_EQ(loaded.history[0].train_accuracy, epoch.train_accuracy);
  EXPECT_EQ(loaded.history[0].test_accuracy, epoch.test_accuracy);
}

TEST(CacheTest, RejectsFailedOutcomes) {
  TempCacheDir dir("failed");
  ArtifactCache cache(dir.path());
  JobOutcome failed;
  failed.ok = false;
  EXPECT_FALSE(cache.Store(1, failed).ok());
  JobOutcome out;
  EXPECT_FALSE(cache.Lookup(1, &out));
}

TEST(CacheTest, MissingEntryIsAMiss) {
  TempCacheDir dir("missing");
  ArtifactCache cache(dir.path());
  JobOutcome out;
  EXPECT_FALSE(cache.Lookup(42, &out));
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(CacheTest, CorruptedEntriesMissAndRecover) {
  TempCacheDir dir("corrupt");
  const datagen::DatasetPair pair = SmallPair();
  const RunnerOptions options = SmallDetectorOptions();

  ArtifactCache cache(dir.path());
  Scheduler cold({.threads = 0, .cache = &cache});
  const auto cold_id = cold.SubmitDetector(pair, options);
  cold.RunAll();
  const RepeatedResult reference = cold.Take(cold_id);

  // Truncate/garble every entry on disk.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "birnn-artifact v1\nnot a valid entry\n";
  }

  // The damaged entries must count as misses and be recomputed, with the
  // same bits as the original cold run; Store overwrites them.
  ArtifactCache recover_cache(dir.path());
  Scheduler recover({.threads = 2, .cache = &recover_cache});
  const auto rid = recover.SubmitDetector(pair, options);
  recover.RunAll();
  const RepeatedResult recovered = recover.Take(rid);
  EXPECT_EQ(recover.stats().cache_hits, 0);
  EXPECT_EQ(recover.stats().computed, 3);
  EXPECT_GE(recover_cache.stats().corrupt, 3);
  ExpectBitIdentical(reference, recovered);

  // After recovery the entries are valid again.
  ArtifactCache warm_cache(dir.path());
  Scheduler warm({.threads = 0, .cache = &warm_cache});
  const auto wid = warm.SubmitDetector(pair, options);
  warm.RunAll();
  EXPECT_EQ(warm.stats().cache_hits, 3);
  ExpectBitIdentical(reference, warm.Take(wid));
}

TEST(CacheTest, ResolveDirPrecedence) {
  EXPECT_EQ(ArtifactCache::ResolveDir("/x/y"), "/x/y");
  // Without an explicit dir, the env var (if set) or the default applies.
  const char* env = std::getenv("BIRNN_CACHE_DIR");
  const std::string resolved = ArtifactCache::ResolveDir("");
  if (env != nullptr) {
    EXPECT_EQ(resolved, env);
  } else {
    EXPECT_EQ(resolved, ".birnn-cache");
  }
}

TEST(SchedulerTest, HarnessWallClockIsReported) {
  const datagen::DatasetPair pair = SmallPair();
  Scheduler scheduler({.threads = 2});
  const auto id = scheduler.SubmitRaha(pair, 2, 8, 3);
  scheduler.RunAll();
  const RepeatedResult result = scheduler.Take(id);
  EXPECT_GT(result.harness_wall_seconds, 0.0);
  // Per-rep train time is measured inside the job, not the harness wall.
  EXPECT_EQ(result.train_seconds.n, 2u);
}

}  // namespace
}  // namespace birnn::eval
