/* Plain-C translation unit exercising the embeddable C API end to end:
 * load a bundle, open a session, stream insert/update/delete deltas, read
 * verdicts back and hit the error paths. Compiled as C99 (no C++ anywhere)
 * to prove the header and ABI really are C-consumable; driven from
 * stream_test.cc, which checks the returned step code is 0. */

#include <string.h>

#include "birnn_c.h"

/* Returns 0 on success, or the 1-based number of the failing step. */
int birnn_capi_smoke(const char* bundle_dir) {
  birnn_detector* detector = NULL;
  birnn_session* session = NULL;
  birnn_verdict verdict;
  const char* values[16];
  int32_t n_attrs;
  int32_t i;
  uint64_t insert_version;

  if (birnn_detector_load(bundle_dir, &detector) != BIRNN_OK) return 1;
  if (!birnn_detector_stream_capable(detector)) return 2;
  n_attrs = birnn_detector_n_attrs(detector);
  if (n_attrs <= 0 || n_attrs > 16) return 3;

  if (birnn_session_create(detector, &session) != BIRNN_OK) return 4;
  /* The session keeps the detector alive on its own. */
  birnn_detector_free(detector);
  detector = NULL;

  for (i = 0; i < n_attrs; ++i) values[i] = "abc 12";
  if (birnn_session_insert(session, 7, values, n_attrs) != BIRNN_OK) {
    return 5;
  }
  if (birnn_session_num_rows(session) != 1) return 6;

  if (birnn_session_verdict(session, 7, 0, &verdict) != BIRNN_OK) return 7;
  if (verdict.is_error != 0 && verdict.is_error != 1) return 8;
  if (verdict.p_error < 0.0f || verdict.p_error > 1.0f) return 9;
  if (verdict.version == 0) return 10;
  insert_version = verdict.version;

  if (birnn_session_update(session, 7, 0, "zz 9") != BIRNN_OK) return 11;
  if (birnn_session_verdict(session, 7, 0, &verdict) != BIRNN_OK) return 12;
  if (verdict.version <= insert_version) return 13;

  /* Error paths surface typed codes and a message, never crashes. */
  if (birnn_session_insert(session, 7, values, n_attrs) !=
      BIRNN_FAILED_PRECONDITION) {
    return 14;
  }
  if (strlen(birnn_last_error()) == 0) return 15;
  if (birnn_session_update(session, 99, 0, "x") != BIRNN_NOT_FOUND) {
    return 16;
  }
  if (birnn_session_verdict(session, 7, 999, &verdict) !=
      BIRNN_INVALID_ARGUMENT) {
    return 17;
  }

  if (birnn_session_delete_row(session, 7) != BIRNN_OK) return 18;
  if (birnn_session_verdict(session, 7, 0, &verdict) != BIRNN_NOT_FOUND) {
    return 19;
  }
  if (birnn_session_num_rows(session) != 0) return 20;
  if (birnn_session_drift_alarms(session) < 0) return 21;

  /* NULL-handle hygiene: free is NULL-safe, queries degrade. */
  birnn_session_free(session);
  birnn_session_free(NULL);
  birnn_detector_free(NULL);
  if (birnn_detector_n_attrs(NULL) != -1) return 22;
  if (birnn_session_num_rows(NULL) != -1) return 23;
  if (birnn_session_create(NULL, &session) != BIRNN_INVALID_ARGUMENT) {
    return 24;
  }
  return 0;
}

/* Fine-tune oracle: defer every cell to its stored verdict. */
static int32_t defer_to_verdicts(void* ctx, int64_t row_id, int32_t attr) {
  (void)ctx;
  (void)row_id;
  (void)attr;
  return -1;
}

/* Drives the drift-adaptation loop a host engine (database UDF, FFI
 * binding) would run: stream tuples, trigger adaptation, receive the
 * promoted detector handle. Returns 0 on success, or the 1-based number
 * of the failing step; driven from adapt_test.cc. */
int birnn_capi_adapt_smoke(const char* bundle_dir,
                           const char* candidate_dir) {
  birnn_detector* detector = NULL;
  birnn_detector* promoted = NULL;
  birnn_session* session = NULL;
  birnn_adapt_options options;
  birnn_adapt_result result;
  const char* values[3];
  int64_t r;

  if (birnn_detector_load(bundle_dir, &detector) != BIRNN_OK) return 1;
  if (birnn_session_create(detector, &session) != BIRNN_OK) return 2;

  values[0] = "abc";
  values[1] = "name";
  values[2] = "12";
  for (r = 0; r < 8; ++r) {
    if (birnn_session_insert(session, r, values, 3) != BIRNN_OK) return 3;
  }
  if (birnn_session_reservoir_rows(session) != 8) return 4;
  if (birnn_session_reset_drift_alarms(session) < 0) return 5;
  if (birnn_session_reset_drift_alarms(NULL) != -1) return 6;
  if (birnn_session_reservoir_rows(NULL) != -1) return 7;

  birnn_adapt_options_init(&options);
  if (options.min_reservoir_rows <= 0) return 8;
  if (options.f1_band < 0.0) return 9;
  options.min_reservoir_rows = 2;
  options.bn_only = 1;   /* batch-norm recalibration only: fast */
  options.f1_band = 1.0; /* F1 <= 1, so the gate always passes */
  options.candidate_dir = candidate_dir;

  if (birnn_adapt_run(detector, session, &options, defer_to_verdicts, NULL,
                      NULL, NULL, &result, &promoted) != BIRNN_OK) {
    return 10;
  }
  if (result.outcome != BIRNN_ADAPT_PROMOTED) return 11;
  if (promoted == NULL) return 12;
  if (!birnn_detector_stream_capable(promoted)) return 13;
  if (result.deterministic_eval != 1) return 14;
  if (result.reservoir_rows != 8) return 15;
  if (result.train_cells <= 0 || result.validation_cells <= 0) return 16;

  /* Error paths surface typed codes, never crashes. A scratch out-param
   * keeps the promoted handle above intact. */
  {
    birnn_detector* scratch = NULL;
    if (birnn_adapt_run(NULL, session, &options, NULL, NULL, NULL, NULL,
                        &result, &scratch) != BIRNN_INVALID_ARGUMENT) {
      return 17;
    }
    if (birnn_adapt_run(detector, NULL, &options, NULL, NULL, NULL, NULL,
                        &result, &scratch) != BIRNN_INVALID_ARGUMENT) {
      return 18;
    }
    if (scratch != NULL) return 19;
  }

  birnn_session_free(session);
  birnn_detector_free(promoted);
  birnn_detector_free(detector);
  return 0;
}
