/* Plain-C translation unit exercising the embeddable C API end to end:
 * load a bundle, open a session, stream insert/update/delete deltas, read
 * verdicts back and hit the error paths. Compiled as C99 (no C++ anywhere)
 * to prove the header and ABI really are C-consumable; driven from
 * stream_test.cc, which checks the returned step code is 0. */

#include <string.h>

#include "birnn_c.h"

/* Returns 0 on success, or the 1-based number of the failing step. */
int birnn_capi_smoke(const char* bundle_dir) {
  birnn_detector* detector = NULL;
  birnn_session* session = NULL;
  birnn_verdict verdict;
  const char* values[16];
  int32_t n_attrs;
  int32_t i;
  uint64_t insert_version;

  if (birnn_detector_load(bundle_dir, &detector) != BIRNN_OK) return 1;
  if (!birnn_detector_stream_capable(detector)) return 2;
  n_attrs = birnn_detector_n_attrs(detector);
  if (n_attrs <= 0 || n_attrs > 16) return 3;

  if (birnn_session_create(detector, &session) != BIRNN_OK) return 4;
  /* The session keeps the detector alive on its own. */
  birnn_detector_free(detector);
  detector = NULL;

  for (i = 0; i < n_attrs; ++i) values[i] = "abc 12";
  if (birnn_session_insert(session, 7, values, n_attrs) != BIRNN_OK) {
    return 5;
  }
  if (birnn_session_num_rows(session) != 1) return 6;

  if (birnn_session_verdict(session, 7, 0, &verdict) != BIRNN_OK) return 7;
  if (verdict.is_error != 0 && verdict.is_error != 1) return 8;
  if (verdict.p_error < 0.0f || verdict.p_error > 1.0f) return 9;
  if (verdict.version == 0) return 10;
  insert_version = verdict.version;

  if (birnn_session_update(session, 7, 0, "zz 9") != BIRNN_OK) return 11;
  if (birnn_session_verdict(session, 7, 0, &verdict) != BIRNN_OK) return 12;
  if (verdict.version <= insert_version) return 13;

  /* Error paths surface typed codes and a message, never crashes. */
  if (birnn_session_insert(session, 7, values, n_attrs) !=
      BIRNN_FAILED_PRECONDITION) {
    return 14;
  }
  if (strlen(birnn_last_error()) == 0) return 15;
  if (birnn_session_update(session, 99, 0, "x") != BIRNN_NOT_FOUND) {
    return 16;
  }
  if (birnn_session_verdict(session, 7, 999, &verdict) !=
      BIRNN_INVALID_ARGUMENT) {
    return 17;
  }

  if (birnn_session_delete_row(session, 7) != BIRNN_OK) return 18;
  if (birnn_session_verdict(session, 7, 0, &verdict) != BIRNN_NOT_FOUND) {
    return 19;
  }
  if (birnn_session_num_rows(session) != 0) return 20;
  if (birnn_session_drift_alarms(session) < 0) return 21;

  /* NULL-handle hygiene: free is NULL-safe, queries degrade. */
  birnn_session_free(session);
  birnn_session_free(NULL);
  birnn_detector_free(NULL);
  if (birnn_detector_n_attrs(NULL) != -1) return 22;
  if (birnn_session_num_rows(NULL) != -1) return 23;
  if (birnn_session_create(NULL, &session) != BIRNN_INVALID_ARGUMENT) {
    return 24;
  }
  return 0;
}
