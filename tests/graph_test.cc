#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/gradcheck.h"
#include "nn/graph.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace birnn::nn {
namespace {

TEST(GraphTest, ForwardMatMulAdd) {
  Graph g;
  Graph::Var a = g.Input(Tensor::FromMatrix(1, 2, {1, 2}));
  Graph::Var b = g.Input(Tensor::FromMatrix(2, 1, {3, 4}));
  Graph::Var c = g.MatMul(a, b);
  EXPECT_FLOAT_EQ(g.value(c).at(0, 0), 11);
}

TEST(GraphTest, BackwardThroughScalarChain) {
  // loss = tanh(x * w); d loss/dw = x * (1 - tanh^2).
  Parameter w("w", Tensor::FromMatrix(1, 1, {0.5f}));
  Graph g;
  Graph::Var x = g.Input(Tensor::FromMatrix(1, 1, {2.0f}));
  Graph::Var wx = g.MatMul(x, g.Param(&w));
  Graph::Var y = g.Tanh(wx);
  w.ZeroGrad();
  g.Backward(y);
  const float t = std::tanh(1.0f);
  EXPECT_NEAR(w.grad[0], 2.0f * (1.0f - t * t), 1e-5);
}

TEST(GraphTest, ParamReuseAccumulatesGradient) {
  // loss = w + w -> dw = 2 (two Param nodes bound to the same parameter).
  Parameter w("w", Tensor::FromMatrix(1, 1, {3.0f}));
  Graph g;
  Graph::Var a = g.Param(&w);
  Graph::Var b = g.Param(&w);
  Graph::Var sum = g.Add(a, b);
  w.ZeroGrad();
  g.Backward(sum);
  EXPECT_FLOAT_EQ(w.grad[0], 2.0f);
}

TEST(GraphTest, ProbsAvailableAfterCrossEntropy) {
  Graph g;
  Graph::Var logits = g.Input(Tensor::FromMatrix(1, 2, {0, 0}));
  Graph::Var loss = g.SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(g.value(loss).scalar(), std::log(2.0f), 1e-5);
  EXPECT_NEAR(g.Probs(loss).at(0, 1), 0.5f, 1e-6);
}

// ------------------------------------------------------- gradient checking

/// Builds a parameterized loss for a given op and checks gradients against
/// finite differences.
struct OpCase {
  std::string name;
  // Builds a scalar loss from two parameters (some ops only use the first).
  std::function<Graph::Var(Graph*, Parameter*, Parameter*)> build;
};

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const OpCase& op_case = GetParam();
  Rng rng(1234);
  Parameter p1("p1", Tensor(3, 4));
  Parameter p2("p2", Tensor(3, 4));
  NormalInit(&p1.value, 0.5f, &rng);
  NormalInit(&p2.value, 0.5f, &rng);

  auto loss_fn = [&](bool with_backward) {
    Graph g;
    Graph::Var loss = op_case.build(&g, &p1, &p2);
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(77);
  GradCheckResult result = CheckParameterGradients(
      {&p1, &p2}, loss_fn, &check_rng, 1e-3f, 2e-2f, 12);
  EXPECT_TRUE(result.ok) << op_case.name
                         << " max_rel_diff=" << result.max_rel_diff;
  EXPECT_GT(result.checked_elements, 0u);
}

/// Reduces a (n,m) Var to a scalar via cross-entropy against fixed labels
/// after a projection, so every op gets a well-behaved scalar head.
Graph::Var ReduceToLoss(Graph* g, Graph::Var x) {
  // Copy the dimensions: adding nodes below may reallocate the tape, which
  // would invalidate a reference into g->value(x).
  const int rows = g->value(x).rows();
  const int cols = g->value(x).cols();
  // Project columns to 2 with a fixed matrix, then cross-entropy.
  Tensor proj(cols, 2);
  for (int i = 0; i < cols; ++i) {
    proj.at(i, 0) = 0.1f * static_cast<float>(i + 1);
    proj.at(i, 1) = -0.05f * static_cast<float>(i + 1);
  }
  Graph::Var logits = g->MatMul(x, g->Input(proj));
  std::vector<int> labels(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) labels[static_cast<size_t>(i)] = i % 2;
  return g->SoftmaxCrossEntropy(logits, labels);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, GradCheckTest,
    ::testing::Values(
        OpCase{"tanh",
               [](Graph* g, Parameter* a, Parameter*) {
                 return ReduceToLoss(g, g->Tanh(g->Param(a)));
               }},
        OpCase{"relu",
               [](Graph* g, Parameter* a, Parameter*) {
                 return ReduceToLoss(g, g->Relu(g->Param(a)));
               }},
        OpCase{"sigmoid",
               [](Graph* g, Parameter* a, Parameter*) {
                 return ReduceToLoss(g, g->Sigmoid(g->Param(a)));
               }},
        OpCase{"add",
               [](Graph* g, Parameter* a, Parameter* b) {
                 return ReduceToLoss(g, g->Add(g->Param(a), g->Param(b)));
               }},
        OpCase{"sub",
               [](Graph* g, Parameter* a, Parameter* b) {
                 return ReduceToLoss(g, g->Sub(g->Param(a), g->Param(b)));
               }},
        OpCase{"mul",
               [](Graph* g, Parameter* a, Parameter* b) {
                 return ReduceToLoss(g, g->Mul(g->Param(a), g->Param(b)));
               }},
        OpCase{"scale",
               [](Graph* g, Parameter* a, Parameter*) {
                 return ReduceToLoss(g, g->ScaleBy(g->Param(a), 1.7f));
               }},
        OpCase{"matmul",
               [](Graph* g, Parameter* a, Parameter* b) {
                 // Exercise gradients on both operands: a (3,4) times the
                 // transpose-shaped product tanh(b)(3,4) -> reshape via a
                 // fixed (4,3) projection so shapes conform.
                 Graph::Var rhs =
                     g->MatMul(g->Tanh(g->Param(b)),
                               g->Input(Tensor::FromMatrix(
                                   4, 3, {0.3f, -0.1f, 0.2f, 0.5f, 0.4f,
                                          -0.2f, 0.1f, 0.2f, 0.3f, -0.4f,
                                          0.1f, 0.6f})));
                 // rhs is (3,3); a (3,4): multiply rhs * a -> (3,4).
                 return ReduceToLoss(g, g->MatMul(rhs, g->Param(a)));
               }},
        OpCase{"concat",
               [](Graph* g, Parameter* a, Parameter* b) {
                 return ReduceToLoss(
                     g, g->ConcatCols({g->Param(a), g->Param(b)}));
               }},
        OpCase{"addbias",
               [](Graph* g, Parameter* a, Parameter* b) {
                 // x gradient through AddBias (the vector-bias gradient has
                 // its own dedicated test below).
                 Graph::Var biased = g->AddBias(
                     g->Param(a),
                     g->Input(Tensor::FromVector({0.1f, -0.2f, 0.3f, 0.4f})));
                 return ReduceToLoss(g, g->Add(biased, g->Tanh(g->Param(b))));
               }}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(GradCheckBiasTest, VectorBiasGradient) {
  // Dedicated check that AddBias accumulates into a vector-shaped param.
  Rng rng(5);
  Parameter x("x", Tensor(3, 4));
  Parameter bias("bias", Tensor(std::vector<int>{4}));
  NormalInit(&x.value, 0.5f, &rng);
  NormalInit(&bias.value, 0.5f, &rng);
  auto loss_fn = [&](bool with_backward) {
    Graph g;
    Graph::Var y = g.AddBias(g.Param(&x), g.Param(&bias));
    Graph::Var logits = g.MatMul(
        g.Tanh(y), g.Input(Tensor::FromMatrix(
                       4, 2, {0.2f, -0.1f, 0.3f, 0.1f, -0.2f, 0.4f, 0.1f,
                              -0.3f})));
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, {0, 1, 0});
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(7);
  GradCheckResult result =
      CheckParameterGradients({&x, &bias}, loss_fn, &check_rng, 1e-3f, 2e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_diff;
}

TEST(GradCheckEmbeddingTest, EmbeddingGradient) {
  Rng rng(6);
  Parameter table("table", Tensor(5, 3));
  NormalInit(&table.value, 0.5f, &rng);
  const std::vector<int> ids{0, 2, 4, 2};
  auto loss_fn = [&](bool with_backward) {
    Graph g;
    Graph::Var emb = g.Embedding(g.Param(&table), ids);
    Graph::Var logits = g.MatMul(
        g.Tanh(emb),
        g.Input(Tensor::FromMatrix(3, 2, {0.3f, -0.2f, 0.1f, 0.4f, -0.1f,
                                          0.2f})));
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, {0, 1, 0, 1});
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(8);
  GradCheckResult result =
      CheckParameterGradients({&table}, loss_fn, &check_rng, 1e-3f, 2e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_diff;
}

TEST(GradCheckBatchNormTest, TrainModeGradient) {
  Rng rng(9);
  Parameter x("x", Tensor(6, 3));
  Parameter gamma("gamma", Tensor::Full({3}, 1.0f));
  Parameter beta("beta", Tensor(std::vector<int>{3}));
  NormalInit(&x.value, 1.0f, &rng);
  NormalInit(&gamma.value, 0.3f, &rng);
  gamma.value[0] += 1.0f;

  auto loss_fn = [&](bool with_backward) {
    Graph g;
    Tensor rm(std::vector<int>{3});
    Tensor rv = Tensor::Full({3}, 1.0f);
    Graph::Var y = g.BatchNormTrain(g.Param(&x), g.Param(&gamma),
                                    g.Param(&beta), &rm, &rv);
    Graph::Var logits = g.MatMul(
        y, g.Input(Tensor::FromMatrix(3, 2, {0.5f, -0.5f, 0.2f, 0.3f, -0.1f,
                                             0.4f})));
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, {0, 1, 0, 1, 0, 1});
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(10);
  GradCheckResult result = CheckParameterGradients(
      {&x, &gamma, &beta}, loss_fn, &check_rng, 1e-3f, 3e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_diff;
}

TEST(GradCheckBatchNormTest, InferModeGradient) {
  Rng rng(11);
  Parameter x("x", Tensor(4, 3));
  Parameter gamma("gamma", Tensor::Full({3}, 1.2f));
  Parameter beta("beta", Tensor(std::vector<int>{3}));
  NormalInit(&x.value, 1.0f, &rng);
  const Tensor rm = Tensor::FromVector({0.1f, -0.2f, 0.3f});
  const Tensor rv = Tensor::FromVector({1.1f, 0.9f, 1.3f});

  auto loss_fn = [&](bool with_backward) {
    Graph g;
    Graph::Var y = g.BatchNormInfer(g.Param(&x), g.Param(&gamma),
                                    g.Param(&beta), rm, rv);
    Graph::Var logits = g.MatMul(
        y, g.Input(Tensor::FromMatrix(3, 2, {0.5f, -0.5f, 0.2f, 0.3f, -0.1f,
                                             0.4f})));
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, {0, 1, 0, 1});
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(12);
  GradCheckResult result = CheckParameterGradients(
      {&x, &gamma, &beta}, loss_fn, &check_rng, 1e-3f, 2e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_diff;
}

TEST(GraphTest, BatchNormTrainNormalizesBatch) {
  Graph g;
  Parameter gamma("gamma", Tensor::Full({2}, 1.0f));
  Parameter beta("beta", Tensor(std::vector<int>{2}));
  Tensor rm(std::vector<int>{2});
  Tensor rv = Tensor::Full({2}, 1.0f);
  Tensor x = Tensor::FromMatrix(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  Graph::Var y = g.BatchNormTrain(g.Input(x), g.Param(&gamma), g.Param(&beta),
                                  &rm, &rv);
  // Output columns should have ~zero mean and ~unit variance.
  const Tensor& out = g.value(y);
  for (int c = 0; c < 2; ++c) {
    float mean = 0;
    for (int r = 0; r < 4; ++r) mean += out.at(r, c);
    mean /= 4;
    EXPECT_NEAR(mean, 0.0f, 1e-5);
  }
  // Running stats moved toward the batch statistics.
  EXPECT_GT(rm[0], 0.0f);
  EXPECT_GT(rm[1], rm[0]);
}

}  // namespace
}  // namespace birnn::nn
