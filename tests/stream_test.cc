// stream subsystem tests: bundle manifest v3 round trips, the CDC table
// session (replay-as-inserts equivalence against the offline report,
// incremental re-scoring minimality, versioned verdicts, drift alarms,
// concurrency under TSAN), the serve-plane "delta" op end to end over real
// sockets, and the embeddable C API driven from a plain-C translation unit.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/model.h"
#include "datagen/datasets.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "stream/session.h"

extern "C" int birnn_capi_smoke(const char* bundle_dir);

namespace birnn::stream {
namespace {

// A hand-built detector with frozen column statistics: streaming-capable
// without paying for a training run.
core::TrainedDetector MakeTinyTrained(bool frozen_stats = true) {
  core::TrainedDetector trained;
  trained.chars = data::CharIndex::BuildFromStrings(
      {"abcdefghijklmnopqrstuvwxyz0123456789 .-"});
  core::ModelConfig config;
  config.vocab = trained.chars.vocab_size();
  config.max_len = 12;
  config.n_attrs = 3;
  config.char_emb_dim = 8;
  config.units = 8;
  config.stacks = 1;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 4;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 8;
  config.seed = 99;
  trained.config = config;
  trained.model = std::make_unique<core::ErrorDetectionModel>(config);
  trained.attr_names = {"id", "name", "score"};
  trained.attr_max_value_len = {8, 12, 6};
  if (frozen_stats) {
    trained.attr_empty_rate = {0.0f, 0.0f, 0.0f};
    trained.attr_error_rate = {0.0f, 0.0f, 0.0f};
    trained.has_frozen_stats = true;
  }
  return trained;
}

std::shared_ptr<const serve::LoadedDetector> MakeTinyShared(
    bool frozen_stats = true) {
  auto loaded = serve::MakeLoadedDetector(MakeTinyTrained(frozen_stats));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::make_shared<const serve::LoadedDetector>(
      std::move(loaded).value());
}

std::string TempDir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------------- Bundle manifest v3

TEST(BundleV3Test, FrozenStatsSurviveSaveLoad) {
  core::TrainedDetector trained = MakeTinyTrained();
  trained.attr_empty_rate = {0.125f, 0.0f, 0.75f};
  trained.attr_error_rate = {0.03125f, 0.5f, 0.0f};
  const uint64_t fingerprint = trained.chars.Fingerprint();

  const std::string dir = TempDir("birnn_stream_v3_roundtrip");
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir).ok());

  // The manifest advertises version 3 and carries the new lines.
  std::ifstream in(dir + "/manifest.txt");
  std::string manifest((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("birnn-detector-bundle 3"), std::string::npos);
  EXPECT_NE(manifest.find("char_fingerprint"), std::string::npos);
  EXPECT_NE(manifest.find("attr_stats"), std::string::npos);

  auto loaded = serve::LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->stream_capable());
  EXPECT_EQ(loaded->char_fingerprint(), fingerprint);
  ASSERT_EQ(loaded->attr_empty_rate().size(), 3u);
  EXPECT_EQ(loaded->attr_empty_rate()[0], 0.125f);
  EXPECT_EQ(loaded->attr_empty_rate()[2], 0.75f);
  EXPECT_EQ(loaded->attr_error_rate()[1], 0.5f);
  std::filesystem::remove_all(dir);
}

TEST(BundleV3Test, PreV3BundlesStillLoadButAreNotStreamCapable) {
  const core::TrainedDetector trained = MakeTinyTrained(false);
  const std::string dir = TempDir("birnn_stream_v2_compat");
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir).ok());

  std::ifstream in(dir + "/manifest.txt");
  std::string manifest((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("birnn-detector-bundle 2"), std::string::npos);

  auto loaded = serve::LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->stream_capable());
  std::filesystem::remove_all(dir);
}

TEST(BundleV3Test, TamperedDictionaryIsRejectedByFingerprint) {
  const core::TrainedDetector trained = MakeTinyTrained();
  const std::string dir = TempDir("birnn_stream_v3_tamper");
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir).ok());

  // Flip the stored fingerprint; the reconstructed dictionary no longer
  // matches and the load must fail instead of desyncing the encoder.
  std::ifstream in(dir + "/manifest.txt");
  std::string manifest((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::string key = "char_fingerprint ";
  const size_t pos = manifest.find(key);
  ASSERT_NE(pos, std::string::npos);
  manifest[pos + key.size()] =
      manifest[pos + key.size()] == '1' ? '2' : '1';
  std::ofstream out(dir + "/manifest.txt");
  out << manifest;
  out.close();

  EXPECT_FALSE(serve::LoadDetectorBundle(dir).ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ TableSession

TEST(TableSessionTest, RequiresStreamCapableBundle) {
  auto session = TableSession::Create(MakeTinyShared(false));
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kUnsupportedBundle);
  EXPECT_EQ(serve::StatusCodeToProtocolString(session.status().code()),
            "UNSUPPORTED_BUNDLE");
}

TEST(TableSessionTest, AppliesDeltasWithVersionedVerdicts) {
  auto session = TableSession::Create(MakeTinyShared());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  TableSession& s = **session;

  std::vector<std::pair<int, CellVerdict>> affected;
  ASSERT_TRUE(s.Insert(5, {"abc", "name x", "12"}, &affected).ok());
  ASSERT_EQ(affected.size(), 3u);
  for (const auto& [attr, verdict] : affected) {
    EXPECT_GE(attr, 0);
    EXPECT_LE(verdict.p_error, 1.0f);
    EXPECT_GE(verdict.p_error, 0.0f);
    EXPECT_EQ(verdict.version, 1u);
  }

  // An update bumps only its cell's version.
  ASSERT_TRUE(s.Update(5, 1, "name y").ok());
  auto updated = s.GetVerdict(5, 1);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->version, 2u);
  auto untouched = s.GetVerdict(5, 0);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(untouched->version, 1u);

  // Typed failures, no state change.
  EXPECT_EQ(s.Insert(5, {"a", "b", "c"}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.Update(99, 0, "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(s.Update(5, 7, "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Insert(6, {"too", "few"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Delete(99).code(), StatusCode::kNotFound);

  ASSERT_TRUE(s.Delete(5).ok());
  EXPECT_EQ(s.GetVerdict(5, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.stats().rows, 0);
  EXPECT_EQ(s.stats().deltas, 3);
}

TEST(TableSessionTest, RescoresOnlyAffectedCells) {
  auto session = TableSession::Create(MakeTinyShared());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  TableSession& s = **session;
  const int n = s.n_attrs();

  ASSERT_TRUE(s.Insert(0, {"aaa", "bbb", "cc"}).ok());
  EXPECT_EQ(s.stats().cells_scored, n);

  // Update re-scores exactly one cell, not the tuple or the table.
  ASSERT_TRUE(s.Update(0, 2, "dd").ok());
  EXPECT_EQ(s.stats().cells_scored, n + 1);

  // Delete re-scores nothing.
  ASSERT_TRUE(s.Insert(1, {"x", "y", "z"}).ok());
  ASSERT_TRUE(s.Delete(0).ok());
  EXPECT_EQ(s.stats().cells_scored, 2 * n + 1);

  // Re-inserting previously-seen content is answered by the memo: the
  // probe counter moves, the scored counter still advances per cell.
  ASSERT_TRUE(s.Insert(2, {"x", "y", "z"}).ok());
  EXPECT_EQ(s.stats().cells_scored, 3 * n + 1);
  EXPECT_GE(s.stats().memo_hits, n);
}

TEST(TableSessionTest, IncrementalVerdictsMatchBatchDetectAll) {
  auto session = TableSession::Create(MakeTinyShared());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  TableSession& s = **session;

  const char* words[] = {"ale", "ipa 9", "", "stout.x", "42", "porter-1"};
  for (int r = 0; r < 12; ++r) {
    ASSERT_TRUE(s.Insert(r, {words[r % 6], words[(r + 1) % 6],
                             words[(r * 5 + 2) % 6]})
                    .ok());
  }
  for (int r = 0; r < 12; r += 3) {
    ASSERT_TRUE(s.Update(r, r % 3, "rev 2").ok());
  }
  for (int r = 1; r < 12; r += 4) ASSERT_TRUE(s.Delete(r).ok());

  const std::vector<uint8_t> incremental = s.MaterializedVerdicts();
  auto batch = s.DetectAll();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(incremental.size(), batch->size());
  for (size_t i = 0; i < incremental.size(); ++i) {
    ASSERT_EQ(incremental[i], (*batch)[i]) << "cell " << i;
  }
}

TEST(TableSessionTest, DriftAlarmsLatchAgainstFrozenBaselines) {
  SessionOptions options;
  options.drift.min_cells = 4;
  options.drift.max_len_growth = 1.25f;
  options.drift.oov_rate_threshold = 0.05f;
  options.drift.empty_rate_delta = 0.5f;
  // The untrained tiny model's verdicts are arbitrary; keep the error-rate
  // dimension quiet so this test isolates the length and OOV alarms.
  options.drift.error_rate_delta = 1.1f;
  auto session = TableSession::Create(MakeTinyShared(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  TableSession& s = **session;

  // In-distribution rows: no alarms.
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(s.Insert(r, {"abc", "name", "12"}).ok());
  }
  EXPECT_EQ(s.stats().drift_alarms, 0);

  // Attribute 0 (frozen max length 8) starts receiving 12-char values and
  // characters outside the train dictionary ('#' was never seen).
  for (int r = 100; r < 108; ++r) {
    ASSERT_TRUE(s.Update(0, 0, "####toolong#").ok());
  }
  const std::vector<DriftAlarm> alarms = s.drift_alarms();
  ASSERT_GE(alarms.size(), 2u);
  bool saw_len = false;
  bool saw_oov = false;
  for (const DriftAlarm& alarm : alarms) {
    EXPECT_EQ(alarm.attr, 0);
    if (alarm.kind == DriftKind::kMaxLen) saw_len = true;
    if (alarm.kind == DriftKind::kOovRate) saw_oov = true;
  }
  EXPECT_TRUE(saw_len);
  EXPECT_TRUE(saw_oov);
  EXPECT_STREQ(DriftKindName(DriftKind::kOovRate), "oov_rate");

  // Latching: the same drift firing again adds no duplicate alarms.
  const int64_t latched = s.stats().drift_alarms;
  ASSERT_TRUE(s.Update(0, 0, "####stilltoolong#").ok());
  EXPECT_EQ(s.stats().drift_alarms, latched);

  // Live stats expose the raw ingredients.
  const LiveAttrStats live = s.live_attr_stats(0);
  EXPECT_GT(live.oov_chars, 0);
  EXPECT_GT(live.max_prepared_len, 8);
}

TEST(TableSessionTest, ConcurrentSessionsAndSharedSessionAreRaceFree) {
  // One shared detector, one shared session + one private session per
  // thread: the TSAN leg proves delta application, verdict reads and stats
  // snapshots are data-race free.
  auto detector = MakeTinyShared();
  auto shared = TableSession::Create(detector);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  TableSession& s = **shared;

  static constexpr int kThreads = 4;
  static constexpr int kRowsPerThread = 24;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, &detector, t] {
      auto mine = TableSession::Create(detector);
      ASSERT_TRUE(mine.ok());
      for (int r = 0; r < kRowsPerThread; ++r) {
        const int64_t row = t * 1000 + r;
        const std::string v = "v" + std::to_string(r % 7);
        ASSERT_TRUE(s.Insert(row, {v, v + " x", "9"}).ok());
        ASSERT_TRUE((*mine)->Insert(r, {v, v, v}).ok());
        if (r % 3 == 0) {
          ASSERT_TRUE(s.Update(row, 1, "w" + std::to_string(r)).ok());
        }
        if (r % 5 == 4) {
          ASSERT_TRUE(s.Delete(row).ok());
        }
        (void)s.GetVerdict(row, 0);
        (void)s.stats();
        (void)s.drift_alarms();
      }
      ASSERT_EQ((*mine)->stats().rows, kRowsPerThread);
    });
  }
  for (std::thread& t : threads) t.join();

  const SessionStats stats = s.stats();
  EXPECT_EQ(stats.deltas, stats.inserts + stats.updates + stats.deletes);
  EXPECT_EQ(stats.inserts, kThreads * kRowsPerThread);
  EXPECT_EQ(stats.version, static_cast<uint64_t>(stats.deltas));

  // The interleaved end state still matches a from-scratch batch sweep.
  const std::vector<uint8_t> incremental = s.MaterializedVerdicts();
  auto batch = s.DetectAll();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(incremental, *batch);
}

// --------------------------------------- Replay equivalence (paper tables)

// Train a small detector offline, then replay the whole dirty table into a
// fresh session as inserts: the stored verdicts must reproduce the offline
// DetectionReport bit for bit, on every paper generator. This is the
// streaming acceptance invariant — same pure function, different arrival
// order.
class ReplayEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ReplayEquivalenceTest, ReplayedInsertsMatchOfflineReport) {
  datagen::GenOptions gen;
  gen.scale = 0.04;
  gen.seed = 5;
  auto pair = datagen::MakeDataset(GetParam(), gen);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  core::DetectorOptions options;
  options.model = "etsb";
  options.n_label_tuples = 10;
  options.units = 12;
  options.char_emb_dim = 8;
  options.trainer.epochs = 6;
  options.seed = 11;
  core::ErrorDetector detector(options);
  core::TrainedDetector trained;
  auto report = detector.Run(pair->dirty, pair->clean, &trained);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(trained.has_frozen_stats);

  auto loaded = serve::MakeLoadedDetector(std::move(trained));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto session = TableSession::Create(
      std::make_shared<const serve::LoadedDetector>(
          std::move(loaded).value()));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  TableSession& s = **session;

  const int n_attrs = pair->dirty.num_columns();
  const int n_rows = static_cast<int>(pair->dirty.num_rows());
  for (int r = 0; r < n_rows; ++r) {
    std::vector<std::string> tuple;
    tuple.reserve(static_cast<size_t>(n_attrs));
    for (int a = 0; a < n_attrs; ++a) tuple.push_back(pair->dirty.cell(r, a));
    ASSERT_TRUE(s.Insert(r, std::move(tuple)).ok());
  }

  const std::vector<uint8_t> streamed = s.MaterializedVerdicts();
  ASSERT_EQ(streamed.size(), report->predicted.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed[i] != 0, report->predicted[i] != 0)
        << GetParam() << " cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ReplayEquivalenceTest,
                         ::testing::Values("beers", "flights", "hospital",
                                           "movies", "rayyan", "tax"));

// ------------------------------------------------------- Serve-plane delta

TEST(ProtocolDeltaTest, ParsesDeltaRequest) {
  auto req = serve::ParseRequest(
      R"({"id":"d1","op":"delta","model":"m","deltas":[)"
      R"({"kind":"insert","row":41,"values":["a","b","c"]},)"
      R"({"kind":"update","row":41,"attr":1,"value":"bb"},)"
      R"({"kind":"delete","row":40}]})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, "delta");
  ASSERT_EQ(req->deltas.size(), 3u);
  EXPECT_EQ(req->deltas[0].kind, DeltaKind::kInsert);
  EXPECT_EQ(req->deltas[0].row_id, 41);
  ASSERT_EQ(req->deltas[0].values.size(), 3u);
  EXPECT_EQ(req->deltas[1].kind, DeltaKind::kUpdate);
  EXPECT_EQ(req->deltas[1].attr, 1);
  EXPECT_EQ(req->deltas[1].value, "bb");
  EXPECT_EQ(req->deltas[2].kind, DeltaKind::kDelete);
  EXPECT_EQ(req->deltas[2].row_id, 40);
}

TEST(ProtocolDeltaTest, RejectsMalformedDeltaRequests) {
  using serve::ParseRequest;
  EXPECT_FALSE(ParseRequest(R"({"op":"delta"})").ok());  // no deltas
  EXPECT_FALSE(
      ParseRequest(R"({"op":"delta","deltas":[{"kind":"merge","row":1}]})")
          .ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"delta","deltas":[{"kind":"insert"}]})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"delta","deltas":[)"
                            R"({"kind":"update","row":1,"value":"x"}]})")
                   .ok());  // no attr
  EXPECT_FALSE(ParseRequest(R"({"op":"delta","deltas":[)"
                            R"({"kind":"update","row":1,"attr":"name",)"
                            R"("value":"x"}]})")
                   .ok());  // delta attrs are numeric
  EXPECT_FALSE(ParseRequest(R"({"op":"delta","deltas":[)"
                            R"({"kind":"insert","row":1.5,"values":[]}]})")
                   .ok());  // non-integer row
}

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  return fd;
}

std::string RoundTrip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  EXPECT_EQ(static_cast<ssize_t>(framed.size()),
            ::write(fd, framed.data(), framed.size()));
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    response.push_back(c);
  }
  return response;
}

class DeltaOverSocketsTest : public ::testing::TestWithParam<serve::ServeMode> {
};

TEST_P(DeltaOverSocketsTest, DeltasFlowIntoSessionAndStats) {
  serve::ModelRegistry registry;
  {
    auto loaded = serve::MakeLoadedDetector(MakeTinyTrained());
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(registry.Add("tiny", std::move(loaded).value()).ok());
  }
  serve::ServerOptions options;
  options.mode = GetParam();
  serve::Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ConnectTo(server.port());

  auto response = serve::JsonValue::Parse(RoundTrip(
      fd,
      R"({"id":"d1","op":"delta","deltas":[)"
      R"({"kind":"insert","row":1,"values":["abc","name x","12"]},)"
      R"({"kind":"update","row":1,"attr":2,"value":"34"}]})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status"), "OK");
  const serve::JsonValue* applied = response->Find("applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(applied->as_number(), 2.0);
  const serve::JsonValue* verdicts = response->Find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  ASSERT_TRUE(verdicts->is_array());
  // 3 cells for the insert + 1 for the update.
  EXPECT_EQ(verdicts->items().size(), 4u);

  // A failing delta reports a typed error (the earlier ones stay applied).
  auto bad = serve::JsonValue::Parse(RoundTrip(
      fd, R"({"id":"d2","op":"delta","deltas":[)"
          R"({"kind":"delete","row":777}]})"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->GetString("status"), "NOT_FOUND");

  // The stats op reports the session counters.
  auto stats =
      serve::JsonValue::Parse(RoundTrip(fd, R"({"id":"s","op":"stats"})"));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const serve::JsonValue* deltas = stats->Find("deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_EQ(deltas->as_number(), 2.0);
  const serve::JsonValue* scored = stats->Find("delta_cells_scored");
  ASSERT_NE(scored, nullptr);
  EXPECT_EQ(scored->as_number(), 4.0);
  ASSERT_NE(stats->Find("stream_rows"), nullptr);
  EXPECT_EQ(stats->Find("stream_rows")->as_number(), 1.0);

  ::close(fd);
  server.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(BothTransports, DeltaOverSocketsTest,
                         ::testing::Values(serve::ServeMode::kBlocking,
                                           serve::ServeMode::kReactor));

TEST(DeltaOverSocketsTest, NonStreamCapableModelGetsTypedError) {
  serve::ModelRegistry registry;
  {
    auto loaded = serve::MakeLoadedDetector(MakeTinyTrained(false));
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(registry.Add("old", std::move(loaded).value()).ok());
  }
  serve::Server server(&registry);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ConnectTo(server.port());

  auto response = serve::JsonValue::Parse(RoundTrip(
      fd, R"({"id":"d","op":"delta","deltas":[)"
          R"({"kind":"insert","row":1,"values":["a","b","c"]}]})"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status"), "UNSUPPORTED_BUNDLE");

  ::close(fd);
  server.Shutdown();
}

// ------------------------------------------------------------------- C API

TEST(CApiTest, RoundTripFromPlainC) {
  const core::TrainedDetector trained = MakeTinyTrained();
  const std::string dir = TempDir("birnn_stream_capi");
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir).ok());
  EXPECT_EQ(birnn_capi_smoke(dir.c_str()), 0);
  std::filesystem::remove_all(dir);
}

TEST(CApiTest, LoadFailureSetsLastError) {
  EXPECT_EQ(birnn_capi_smoke("/nonexistent/bundle/dir"), 1);
}

}  // namespace
}  // namespace birnn::stream
