// adapt subsystem tests: the session's LRU reservoir and drift-alarm
// reset/re-arm, the adapt::Controller (skip / promote / reject outcomes,
// deterministic reports, tuple-level train/gate split, candidate bundle
// round trip), the serve-plane "adapt" op end to end over both transports
// (promotion bumps the generation, rollback restores byte-identical
// serving), concurrency under TSAN, and the birnn_adapt_* C API driven
// from a plain-C translation unit.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapt/controller.h"
#include "core/model.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "stream/session.h"

extern "C" int birnn_capi_adapt_smoke(const char* bundle_dir,
                                      const char* candidate_dir);

namespace birnn::adapt {
namespace {

// Same hand-built streaming-capable detector as stream_test.cc: frozen
// column statistics without paying for a training run.
core::TrainedDetector MakeTinyTrained() {
  core::TrainedDetector trained;
  trained.chars = data::CharIndex::BuildFromStrings(
      {"abcdefghijklmnopqrstuvwxyz0123456789 .-"});
  core::ModelConfig config;
  config.vocab = trained.chars.vocab_size();
  config.max_len = 12;
  config.n_attrs = 3;
  config.char_emb_dim = 8;
  config.units = 8;
  config.stacks = 1;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 4;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 8;
  config.seed = 99;
  trained.config = config;
  trained.model = std::make_unique<core::ErrorDetectionModel>(config);
  trained.attr_names = {"id", "name", "score"};
  trained.attr_max_value_len = {8, 12, 6};
  trained.attr_empty_rate = {0.0f, 0.0f, 0.0f};
  trained.attr_error_rate = {0.0f, 0.0f, 0.0f};
  trained.has_frozen_stats = true;
  return trained;
}

std::shared_ptr<const serve::LoadedDetector> MakeTinyShared() {
  auto loaded = serve::MakeLoadedDetector(MakeTinyTrained());
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::make_shared<const serve::LoadedDetector>(
      std::move(loaded).value());
}

std::string TempDir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Drift thresholds that the '#'-flood below reliably trips (see the
// matching stream_test.cc case); the error-rate dimension stays quiet
// because the untrained tiny model's verdicts are arbitrary.
stream::SessionOptions DriftySessionOptions() {
  stream::SessionOptions options;
  options.drift.min_cells = 4;
  options.drift.max_len_growth = 1.25f;
  options.drift.oov_rate_threshold = 0.05f;
  options.drift.empty_rate_delta = 0.5f;
  options.drift.error_rate_delta = 1.1f;
  return options;
}

void InsertInDistributionRows(stream::TableSession* s, int64_t first_row,
                              int n_rows) {
  for (int64_t r = first_row; r < first_row + n_rows; ++r) {
    ASSERT_TRUE(s->Insert(r, {"abc", "name", "12"}).ok());
  }
}

// Floods attribute 0 with long out-of-dictionary values until the length
// and OOV alarms latch.
void InduceDriftOnAttr0(stream::TableSession* s) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(s->Update(0, 0, "####toolong#").ok());
  }
  ASSERT_GT(s->stats().drift_alarms, 0);
}

// --------------------------------------------------------------- Reservoir

TEST(ReservoirTest, KeepsMostRecentlyTouchedTuples) {
  stream::SessionOptions options;
  options.reservoir_capacity = 3;
  auto session = stream::TableSession::Create(MakeTinyShared(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  stream::TableSession& s = **session;

  InsertInDistributionRows(&s, 0, 5);
  EXPECT_EQ(s.stats().reservoir_rows, 3);
  std::vector<stream::ReservoirRow> snapshot = s.ReservoirSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].row_id, 2);
  EXPECT_EQ(snapshot[1].row_id, 3);
  EXPECT_EQ(snapshot[2].row_id, 4);
  EXPECT_EQ(snapshot[0].values.size(), 3u);
  EXPECT_EQ(snapshot[0].verdicts.size(), 3u);

  // An update refreshes the captured values and re-touches the tuple.
  ASSERT_TRUE(s.Update(2, 0, "zz").ok());
  snapshot = s.ReservoirSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].row_id, 3);
  EXPECT_EQ(snapshot[2].row_id, 2);
  EXPECT_EQ(snapshot[2].values[0], "zz");

  // Eviction drops the least recently touched tuple (row 3 after the
  // touch above).
  ASSERT_TRUE(s.Insert(5, {"abc", "name", "12"}).ok());
  snapshot = s.ReservoirSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].row_id, 4);
  EXPECT_EQ(snapshot[1].row_id, 2);
  EXPECT_EQ(snapshot[2].row_id, 5);

  // A delete removes the tuple from the reservoir too.
  ASSERT_TRUE(s.Delete(2).ok());
  EXPECT_EQ(s.stats().reservoir_rows, 2);
  snapshot = s.ReservoirSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].row_id, 4);
  EXPECT_EQ(snapshot[1].row_id, 5);
}

TEST(ReservoirTest, ZeroCapacityDisablesTheReservoir) {
  stream::SessionOptions options;
  options.reservoir_capacity = 0;
  auto session = stream::TableSession::Create(MakeTinyShared(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  InsertInDistributionRows(session->get(), 0, 4);
  EXPECT_EQ((*session)->stats().reservoir_rows, 0);
  EXPECT_TRUE((*session)->ReservoirSnapshot().empty());
}

// -------------------------------------------------------- Drift re-arming

TEST(DriftResetTest, ResetClearsAlarmsAndReArmsAgainstFreshWindows) {
  auto session =
      stream::TableSession::Create(MakeTinyShared(), DriftySessionOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  stream::TableSession& s = **session;

  InsertInDistributionRows(&s, 0, 6);
  EXPECT_EQ(s.stats().drift_alarms, 0);
  EXPECT_TRUE(s.DriftedAttrs().empty());
  InduceDriftOnAttr0(&s);
  EXPECT_EQ(s.DriftedAttrs(), std::vector<int>{0});

  const int64_t cleared = s.ResetDriftAlarms();
  EXPECT_GT(cleared, 0);
  EXPECT_EQ(s.stats().drift_alarms, 0);
  EXPECT_EQ(s.stats().drift_resets, 1);
  EXPECT_TRUE(s.drift_alarms().empty());
  EXPECT_TRUE(s.DriftedAttrs().empty());

  // The live windows restarted: the same drift pattern latches again.
  InduceDriftOnAttr0(&s);
  EXPECT_EQ(s.DriftedAttrs(), std::vector<int>{0});
  EXPECT_EQ(s.ResetDriftAlarms(), cleared);
  EXPECT_EQ(s.stats().drift_resets, 2);
}

// -------------------------------------------------------------- Controller

ControllerOptions FastPromoteOptions() {
  ControllerOptions options;
  options.min_reservoir_rows = 2;
  options.bn_only = true;  // no gradient steps: fast and deterministic
  options.f1_band = 1.0;   // F1 <= 1, so the gate always passes
  return options;
}

TEST(ControllerTest, SkipsWhenTheReservoirIsTooSmall) {
  auto session = stream::TableSession::Create(MakeTinyShared());
  ASSERT_TRUE(session.ok());
  InsertInDistributionRows(session->get(), 0, 3);

  Controller controller(MakeTinyShared());  // default min_reservoir_rows=16
  auto report = controller.TriggerAdaptation(session->get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, AdaptOutcome::kSkipped);
  EXPECT_NE(report->reason.find("reservoir"), std::string::npos);
  EXPECT_EQ(report->reservoir_rows, 3);
  // Nothing was attempted: a skip never counts against the lineage.
  EXPECT_EQ(controller.attempts(), 0);
}

TEST(ControllerTest, MaybeAdaptSkipsWithoutLatchedAlarms) {
  auto session = stream::TableSession::Create(MakeTinyShared());
  ASSERT_TRUE(session.ok());
  InsertInDistributionRows(session->get(), 0, 20);

  Controller controller(MakeTinyShared(), FastPromoteOptions());
  EXPECT_FALSE(controller.ShouldAdapt(**session));
  auto report = controller.MaybeAdapt(session->get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, AdaptOutcome::kSkipped);
  EXPECT_NE(report->reason.find("no drift alarms"), std::string::npos);
  EXPECT_EQ(controller.attempts(), 0);
}

TEST(ControllerTest, PromotesWithinBandResetsAlarmsAndSavesTheBundle) {
  auto session =
      stream::TableSession::Create(MakeTinyShared(), DriftySessionOptions());
  ASSERT_TRUE(session.ok());
  stream::TableSession& s = **session;
  InsertInDistributionRows(&s, 0, 12);
  InduceDriftOnAttr0(&s);

  ControllerOptions options = FastPromoteOptions();
  options.candidate_dir = TempDir("birnn_adapt_candidate");
  auto incumbent = MakeTinyShared();
  Controller controller(incumbent, options);
  EXPECT_TRUE(controller.ShouldAdapt(s));

  auto report = controller.TriggerAdaptation(session->get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, AdaptOutcome::kPromoted);
  EXPECT_TRUE(report->deterministic_eval);
  EXPECT_EQ(report->generation, 1);
  EXPECT_EQ(report->reservoir_rows, 12);
  EXPECT_GT(report->train_cells, 0);
  EXPECT_GT(report->validation_cells, 0);
  ASSERT_EQ(report->drifted_attrs.size(), 1u);
  EXPECT_EQ(report->drifted_attrs[0], 0);
  EXPECT_EQ(controller.attempts(), 1);
  EXPECT_EQ(controller.promotions(), 1);
  EXPECT_EQ(controller.rejections(), 0);

  // The candidate replaced the incumbent and the trigger was consumed.
  EXPECT_NE(controller.current().get(), incumbent.get());
  EXPECT_EQ(s.stats().drift_alarms, 0);
  EXPECT_EQ(s.stats().drift_resets, 1);

  // The saved candidate is a full stream-capable v3 bundle with the
  // incumbent's frozen encoding and freshly recomputed column statistics.
  EXPECT_EQ(report->candidate_dir, options.candidate_dir);
  auto loaded = serve::LoadDetectorBundle(options.candidate_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->stream_capable());
  EXPECT_EQ(loaded->n_attrs(), 3);
  EXPECT_EQ(loaded->char_fingerprint(), incumbent->char_fingerprint());
  std::filesystem::remove_all(options.candidate_dir);
}

TEST(ControllerTest, RejectsWhenTheGateFailsAndKeepsTheIncumbent) {
  auto session =
      stream::TableSession::Create(MakeTinyShared(), DriftySessionOptions());
  ASSERT_TRUE(session.ok());
  stream::TableSession& s = **session;
  InsertInDistributionRows(&s, 0, 12);
  InduceDriftOnAttr0(&s);
  const int64_t alarms_before = s.stats().drift_alarms;

  ControllerOptions options = FastPromoteOptions();
  options.f1_band = -2.0;  // candidate_f1 - 2 >= incumbent_f1 is impossible
  auto incumbent = MakeTinyShared();
  Controller controller(incumbent, options);
  auto report = controller.TriggerAdaptation(session->get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, AdaptOutcome::kRejected);
  EXPECT_NE(report->reason.find("below incumbent"), std::string::npos);
  EXPECT_EQ(controller.attempts(), 1);
  EXPECT_EQ(controller.rejections(), 1);
  EXPECT_EQ(controller.promotions(), 0);

  // Rejection leaves everything untouched: same incumbent, alarms still
  // latched (the trigger was not consumed), no bundle written.
  EXPECT_EQ(controller.current().get(), incumbent.get());
  EXPECT_EQ(s.stats().drift_alarms, alarms_before);
  EXPECT_EQ(s.stats().drift_resets, 0);
  EXPECT_TRUE(report->candidate_dir.empty());
}

TEST(ControllerTest, ReportsAreDeterministicAcrossIdenticalRuns) {
  auto make_session = [] {
    auto session = stream::TableSession::Create(MakeTinyShared());
    EXPECT_TRUE(session.ok());
    for (int64_t r = 0; r < 10; ++r) {
      EXPECT_TRUE((*session)
                      ->Insert(r, {"abc" + std::to_string(r % 3), "name",
                                   std::to_string(10 + r)})
                      .ok());
    }
    return std::move(*session);
  };
  auto a = make_session();
  auto b = make_session();
  Controller ca(MakeTinyShared(), FastPromoteOptions());
  Controller cb(MakeTinyShared(), FastPromoteOptions());
  auto ra = ca.TriggerAdaptation(a.get());
  auto rb = cb.TriggerAdaptation(b.get());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->outcome, rb->outcome);
  EXPECT_EQ(ra->incumbent_f1, rb->incumbent_f1);  // bit-exact
  EXPECT_EQ(ra->candidate_f1, rb->candidate_f1);
  EXPECT_EQ(ra->train_cells, rb->train_cells);
  EXPECT_EQ(ra->validation_cells, rb->validation_cells);
}

TEST(ControllerTest, GateAndFineTuneOraclesSeeDisjointTuples) {
  auto session = stream::TableSession::Create(MakeTinyShared());
  ASSERT_TRUE(session.ok());
  InsertInDistributionRows(session->get(), 0, 12);

  ControllerOptions options = FastPromoteOptions();
  options.drift_boost = 1;  // no replication: train_cells == oracle calls
  auto label_rows = std::make_shared<std::set<int64_t>>();
  auto gate_rows = std::make_shared<std::set<int64_t>>();
  auto label_calls = std::make_shared<int64_t>(0);
  auto gate_calls = std::make_shared<int64_t>(0);
  const LabelFn labels = [=](int64_t row_id, int) {
    label_rows->insert(row_id);
    ++*label_calls;
    return -1;  // defer to the stored verdicts
  };
  const LabelFn gate = [=](int64_t row_id, int) {
    gate_rows->insert(row_id);
    ++*gate_calls;
    return -1;
  };
  Controller controller(MakeTinyShared(), options);
  auto report = controller.TriggerAdaptation(session->get(), labels, gate);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->outcome, AdaptOutcome::kPromoted);

  // The gate oracle judged exactly the validation slice, the fine-tune
  // oracle exactly the training sample, and no tuple fed both.
  EXPECT_EQ(*gate_calls, report->validation_cells);
  EXPECT_EQ(*label_calls, report->train_cells);
  for (const int64_t row : *gate_rows) {
    EXPECT_EQ(label_rows->count(row), 0u) << "tuple " << row << " leaked";
  }
  EXPECT_EQ(static_cast<int64_t>(label_rows->size() + gate_rows->size()),
            report->reservoir_rows);
}

TEST(ControllerTest, ConcurrentDeltasDuringAdaptationAreRaceFree) {
  auto session =
      stream::TableSession::Create(MakeTinyShared(), DriftySessionOptions());
  ASSERT_TRUE(session.ok());
  stream::TableSession& s = **session;
  InsertInDistributionRows(&s, 0, 16);
  InduceDriftOnAttr0(&s);

  std::thread writer([&s] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(s.Update(i % 16, 1, "name" + std::to_string(i)).ok());
      (void)s.stats();
    }
  });
  Controller controller(MakeTinyShared(), FastPromoteOptions());
  auto report = controller.TriggerAdaptation(session->get());
  writer.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->outcome, AdaptOutcome::kSkipped);
}

// ------------------------------------------------------ Serve-plane adapt

TEST(ProtocolAdaptTest, ParsesAdaptRequest) {
  auto req = serve::ParseRequest(
      R"({"id":"a1","op":"adapt","model":"m",)"
      R"("labels":[{"row":41,"attr":0,"label":1},{"row":7,"attr":2,"label":0}],)"
      R"("gate_labels":[{"row":3,"attr":1,"label":1}],"bn_only":true})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, "adapt");
  ASSERT_EQ(req->labels.size(), 2u);
  EXPECT_EQ(req->labels[0].row_id, 41);
  EXPECT_EQ(req->labels[0].attr, 0);
  EXPECT_EQ(req->labels[0].label, 1);
  EXPECT_TRUE(req->has_gate_labels);
  ASSERT_EQ(req->gate_labels.size(), 1u);
  EXPECT_EQ(req->gate_labels[0].row_id, 3);
  EXPECT_EQ(req->adapt_bn_only, 1);

  // Omitted keys keep server defaults.
  auto bare = serve::ParseRequest(R"({"op":"adapt"})");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->labels.empty());
  EXPECT_FALSE(bare->has_gate_labels);
  EXPECT_EQ(bare->adapt_bn_only, -1);

  EXPECT_FALSE(
      serve::ParseRequest(R"({"op":"adapt","labels":[{"attr":0}]})").ok());
  EXPECT_FALSE(
      serve::ParseRequest(
          R"({"op":"adapt","labels":[{"row":1,"attr":0,"label":7}]})")
          .ok());
}

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  return fd;
}

std::string RoundTrip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  EXPECT_EQ(static_cast<ssize_t>(framed.size()),
            ::write(fd, framed.data(), framed.size()));
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    response.push_back(c);
  }
  return response;
}

class AdaptOverSocketsTest
    : public ::testing::TestWithParam<serve::ServeMode> {};

TEST_P(AdaptOverSocketsTest, PromotionBumpsGenerationAndRollbackRestores) {
  const std::string bundle_dir = TempDir("birnn_adapt_serve_bundle");
  ASSERT_TRUE(serve::SaveDetectorBundle(MakeTinyTrained(), bundle_dir).ok());
  serve::ModelRegistry registry;
  {
    auto loaded = serve::MakeLoadedDetector(MakeTinyTrained());
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(registry.Add("tiny", std::move(loaded).value()).ok());
  }
  serve::ServerOptions options;
  options.mode = GetParam();
  options.adapt.min_reservoir_rows = 2;
  options.adapt.bn_only = true;
  options.adapt.f1_band = 1.0;
  options.adapt_bundle_dir = TempDir("birnn_adapt_serve_candidates");
  serve::Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ConnectTo(server.port());

  // Adapting before any delta is a typed precondition failure.
  auto early = serve::JsonValue::Parse(RoundTrip(fd, R"({"op":"adapt"})"));
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->GetString("status"), "FAILED_PRECONDITION");

  for (int r = 0; r < 8; ++r) {
    auto d = serve::JsonValue::Parse(RoundTrip(
        fd, R"({"op":"delta","deltas":[{"kind":"insert","row":)" +
                std::to_string(r) + R"(,"values":["abc","name","12"]}]})"));
    ASSERT_TRUE(d.ok());
    ASSERT_EQ(d->GetString("status"), "OK");
  }
  const std::string detect_request =
      R"({"id":"q","op":"detect","cells":[{"attr":0,"value":"abc"},)"
      R"({"attr":1,"value":"name"}]})";
  const std::string before = RoundTrip(fd, detect_request);

  auto adapted =
      serve::JsonValue::Parse(RoundTrip(fd, R"({"id":"a","op":"adapt"})"));
  ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
  ASSERT_EQ(adapted->GetString("status"), "OK");
  EXPECT_EQ(adapted->GetString("outcome"), "promoted");
  ASSERT_NE(adapted->Find("promoted"), nullptr);
  EXPECT_TRUE(adapted->Find("promoted")->as_bool());
  ASSERT_NE(adapted->Find("generation"), nullptr);
  EXPECT_EQ(adapted->Find("generation")->as_number(), 2.0);
  ASSERT_NE(adapted->Find("deterministic_eval"), nullptr);
  EXPECT_TRUE(adapted->Find("deterministic_eval")->as_bool());

  // Lineage counters surface in stats; the swapped-in model starts with a
  // fresh (absent) table session.
  auto stats =
      serve::JsonValue::Parse(RoundTrip(fd, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  ASSERT_NE(stats->Find("adapt_attempts"), nullptr);
  EXPECT_EQ(stats->Find("adapt_attempts")->as_number(), 1.0);
  EXPECT_EQ(stats->Find("adapt_promotions")->as_number(), 1.0);
  EXPECT_EQ(stats->Find("adapt_rejections")->as_number(), 0.0);
  EXPECT_EQ(stats->Find("generation")->as_number(), 2.0);
  EXPECT_EQ(stats->Find("stream_rows"), nullptr);

  // Detection keeps working on the adapted generation, and rollback
  // restores the incumbent's serving byte for byte.
  const std::string after = RoundTrip(fd, detect_request);
  EXPECT_FALSE(after.empty());
  auto rolled =
      serve::JsonValue::Parse(RoundTrip(fd, R"({"op":"rollback"})"));
  ASSERT_TRUE(rolled.ok());
  ASSERT_EQ(rolled->GetString("status"), "OK");
  EXPECT_EQ(RoundTrip(fd, detect_request), before);

  ::close(fd);
  server.Shutdown();
  std::filesystem::remove_all(bundle_dir);
  std::filesystem::remove_all(options.adapt_bundle_dir);
}

INSTANTIATE_TEST_SUITE_P(BothTransports, AdaptOverSocketsTest,
                         ::testing::Values(serve::ServeMode::kBlocking,
                                           serve::ServeMode::kReactor));

TEST(ServeAdaptTest, TooSmallReservoirReportsSkippedWithoutLineage) {
  serve::ModelRegistry registry;
  {
    auto loaded = serve::MakeLoadedDetector(MakeTinyTrained());
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(registry.Add("tiny", std::move(loaded).value()).ok());
  }
  serve::Server server(&registry);  // default min_reservoir_rows = 16
  ASSERT_TRUE(server.Start().ok());
  const int fd = ConnectTo(server.port());
  for (int r = 0; r < 2; ++r) {
    RoundTrip(fd, R"({"op":"delta","deltas":[{"kind":"insert","row":)" +
                      std::to_string(r) +
                      R"(,"values":["abc","name","12"]}]})");
  }
  auto response =
      serve::JsonValue::Parse(RoundTrip(fd, R"({"op":"adapt"})"));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->GetString("status"), "OK");
  EXPECT_EQ(response->GetString("outcome"), "skipped");
  EXPECT_FALSE(response->Find("promoted")->as_bool());
  EXPECT_EQ(response->Find("generation")->as_number(), 1.0);
  auto stats = serve::JsonValue::Parse(RoundTrip(fd, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("adapt_attempts")->as_number(), 0.0);
  ::close(fd);
  server.Shutdown();
}

// ------------------------------------------------------------------- C API

TEST(CApiAdaptTest, RoundTripFromPlainC) {
  const std::string bundle_dir = TempDir("birnn_adapt_capi_bundle");
  const std::string candidate_dir = TempDir("birnn_adapt_capi_candidate");
  ASSERT_TRUE(serve::SaveDetectorBundle(MakeTinyTrained(), bundle_dir).ok());
  EXPECT_EQ(birnn_capi_adapt_smoke(bundle_dir.c_str(), candidate_dir.c_str()),
            0);
  // The C-driven promotion saved a loadable candidate bundle.
  auto loaded = serve::LoadDetectorBundle(candidate_dir);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::filesystem::remove_all(bundle_dir);
  std::filesystem::remove_all(candidate_dir);
}

}  // namespace
}  // namespace birnn::adapt
