#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "nn/graph.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace birnn::nn {
namespace {

TEST(SgdTest, MovesAgainstGradient) {
  Parameter w("w", Tensor::FromVector({1.0f, -1.0f}));
  w.ZeroGrad();
  w.grad[0] = 0.5f;
  w.grad[1] = -0.5f;
  Sgd sgd(0.1f);
  sgd.Step({&w});
  EXPECT_FLOAT_EQ(w.value[0], 0.95f);
  EXPECT_FLOAT_EQ(w.value[1], -0.95f);
}

TEST(RmsPropTest, NormalizesStepSize) {
  // Two coordinates with very different gradient magnitudes should move by
  // comparable amounts under RMSprop.
  Parameter w("w", Tensor::FromVector({0.0f, 0.0f}));
  RmsProp opt(0.01f);
  for (int i = 0; i < 10; ++i) {
    w.ZeroGrad();
    w.grad[0] = 100.0f;
    w.grad[1] = 0.01f;
    opt.Step({&w});
  }
  const float move0 = -w.value[0];
  const float move1 = -w.value[1];
  EXPECT_GT(move0, 0.0f);
  EXPECT_GT(move1, 0.0f);
  EXPECT_LT(move0 / move1, 3.0f);  // within a small factor of each other
}

TEST(RmsPropTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via grad = 2(w - 3).
  Parameter w("w", Tensor::FromVector({0.0f}));
  RmsProp opt(0.05f);
  for (int i = 0; i < 500; ++i) {
    w.ZeroGrad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.Step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
}

TEST(OptimizerTest, TrainsXorWithGraph) {
  // 2-4-2 MLP on XOR: end-to-end check that graph + layers + optimizer
  // actually learn.
  Rng rng(42);
  Dense hidden("h", 2, 8, Dense::Activation::kTanh, &rng);
  Dense output("o", 8, 2, Dense::Activation::kNone, &rng);
  std::vector<Parameter*> params;
  for (auto* p : hidden.Params()) params.push_back(p);
  for (auto* p : output.Params()) params.push_back(p);

  const Tensor x =
      Tensor::FromMatrix(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<int> y{0, 1, 1, 0};

  RmsProp opt(0.01f);
  float last_loss = 0;
  for (int it = 0; it < 800; ++it) {
    Graph g;
    Graph::Var h = hidden.Bind(&g).Apply(g.Input(x));
    Graph::Var logits = output.Bind(&g).Apply(h);
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, y);
    ZeroGrads(params);
    g.Backward(loss);
    opt.Step(params);
    last_loss = g.value(loss).scalar();
  }
  EXPECT_LT(last_loss, 0.05f);
}

TEST(ZeroGradsTest, ClearsAll) {
  Parameter a("a", Tensor::FromVector({1.0f}));
  Parameter b("b", Tensor::FromVector({2.0f, 3.0f}));
  a.grad[0] = 9;
  b.grad[1] = 9;
  ZeroGrads({&a, &b});
  EXPECT_FLOAT_EQ(a.grad[0], 0);
  EXPECT_FLOAT_EQ(b.grad[1], 0);
}

TEST(CountWeightsTest, SumsSizes) {
  Parameter a("a", Tensor(2, 3));
  Parameter b("b", Tensor(std::vector<int>{5}));
  EXPECT_EQ(CountWeights({&a, &b}), 11u);
}

// --------------------------------------------------------------- Serialize

TEST(SerializeTest, SnapshotRestoreRoundtrip) {
  Rng rng(1);
  Parameter a("a", Tensor(2, 2));
  NormalInit(&a.value, 1.0f, &rng);
  const std::vector<Tensor> snapshot = SnapshotParams({&a});
  const Tensor original = a.value;
  a.value.Fill(0.0f);
  RestoreParams(snapshot, {&a});
  EXPECT_TRUE(a.value.Equals(original));
}

TEST(SerializeTest, FileRoundtrip) {
  Rng rng(2);
  Parameter a("layer/w", Tensor(3, 4));
  Parameter b("layer/b", Tensor(std::vector<int>{4}));
  NormalInit(&a.value, 1.0f, &rng);
  NormalInit(&b.value, 1.0f, &rng);
  const Tensor a_orig = a.value;
  const Tensor b_orig = b.value;

  const std::string path =
      (std::filesystem::temp_directory_path() / "birnn_ckpt_test.bin")
          .string();
  ASSERT_TRUE(SaveParameters({&a, &b}, path).ok());
  a.value.Fill(0);
  b.value.Fill(0);
  ASSERT_TRUE(LoadParameters(path, {&a, &b}).ok());
  EXPECT_TRUE(a.value.Equals(a_orig));
  EXPECT_TRUE(b.value.Equals(b_orig));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingParameterFails) {
  Parameter a("a", Tensor(1, 1));
  const std::string path =
      (std::filesystem::temp_directory_path() / "birnn_ckpt_test2.bin")
          .string();
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter other("other", Tensor(1, 1));
  const Status st = LoadParameters(path, {&other});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  Parameter a("a", Tensor(1, 2));
  const std::string path =
      (std::filesystem::temp_directory_path() / "birnn_ckpt_test3.bin")
          .string();
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter wrong("a", Tensor(2, 2));
  const Status st = LoadParameters(path, {&wrong});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, NotACheckpointFails) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "birnn_ckpt_test4.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage data";
  }
  Parameter a("a", Tensor(1, 1));
  EXPECT_FALSE(LoadParameters(path, {&a}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Parameter a("a", Tensor(1, 1));
  EXPECT_EQ(LoadParameters("/nonexistent/dir/x.bin", {&a}).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace birnn::nn
