#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "datagen/datasets.h"
#include "rotom/augment.h"
#include "rotom/baseline.h"

namespace birnn::rotom {
namespace {

TEST(AugmentTest, CharSwapPreservesMultiset) {
  Rng rng(1);
  const std::string in = "abcdef";
  const std::string out = ApplyAugment(AugmentOp::kCharSwap, in, &rng);
  std::multiset<char> a(in.begin(), in.end());
  std::multiset<char> b(out.begin(), out.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(out.size(), in.size());
}

TEST(AugmentTest, CharDropShortens) {
  Rng rng(2);
  EXPECT_EQ(ApplyAugment(AugmentOp::kCharDrop, "abc", &rng).size(), 2u);
  EXPECT_EQ(ApplyAugment(AugmentOp::kCharDrop, "", &rng), "");
}

TEST(AugmentTest, CharDupLengthens) {
  Rng rng(3);
  EXPECT_EQ(ApplyAugment(AugmentOp::kCharDup, "abc", &rng).size(), 4u);
}

TEST(AugmentTest, TokenShufflePreservesTokens) {
  Rng rng(4);
  const std::string out =
      ApplyAugment(AugmentOp::kTokenShuffle, "alpha beta gamma", &rng);
  std::multiset<std::string> expected{"alpha", "beta", "gamma"};
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : out + " ") {
    if (c == ' ') {
      if (!cur.empty()) tokens.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  EXPECT_EQ(std::multiset<std::string>(tokens.begin(), tokens.end()),
            expected);
}

TEST(AugmentTest, DigitJitterOnlyTouchesDigits) {
  Rng rng(5);
  const std::string out =
      ApplyAugment(AugmentOp::kDigitJitter, "ab12cd", &rng);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(out.substr(0, 2), "ab");
  EXPECT_EQ(out.substr(4), "cd");
  // No digits: unchanged.
  EXPECT_EQ(ApplyAugment(AugmentOp::kDigitJitter, "abc", &rng), "abc");
}

TEST(AugmentTest, CaseFlipChangesOneLetterCase) {
  Rng rng(6);
  const std::string out = ApplyAugment(AugmentOp::kCaseFlip, "abc", &rng);
  int upper = 0;
  for (char c : out) {
    if (std::isupper(static_cast<unsigned char>(c))) ++upper;
  }
  EXPECT_EQ(upper, 1);
  EXPECT_EQ(ApplyAugment(AugmentOp::kCaseFlip, "123", &rng), "123");
}

TEST(AugmentTest, PolicyNameAndApply) {
  AugmentPolicy policy{AugmentOp::kCharSwap, AugmentOp::kDigitJitter};
  EXPECT_EQ(PolicyName(policy), "char_swap+digit_jitter");
  EXPECT_EQ(PolicyName({}), "identity");
  Rng rng(7);
  const std::string out = ApplyPolicy(policy, "ab12", &rng);
  EXPECT_EQ(out.size(), 4u);
}

TEST(AugmentTest, CandidatePoliciesCount) {
  const auto policies = CandidatePolicies();
  const size_t n = AllAugmentOps().size();
  EXPECT_EQ(policies.size(), n + n * (n - 1));
}

TEST(RotomBaselineTest, DetectsErrorsOnHospital) {
  datagen::GenOptions options;
  options.scale = 0.2;
  options.seed = 8;
  const datagen::DatasetPair pair = datagen::MakeHospital(options);
  RotomOptions rotom_options;
  rotom_options.n_label_cells = 200;
  rotom_options.seed = 9;
  RotomBaseline baseline(rotom_options);
  auto result = baseline.Detect(pair.dirty, pair.clean);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->predicted.size(),
            static_cast<size_t>(pair.dirty.num_rows()) *
                pair.dirty.num_columns());
  EXPECT_EQ(result->labeled_cells.size(), 200u);
  EXPECT_FALSE(result->chosen_policy.empty());
  // Better than coin-flip detection on the easy dataset.
  EXPECT_GT(result->test_metrics.f1, 0.2)
      << "F1=" << result->test_metrics.f1;
}

TEST(RotomBaselineTest, SslVariantRuns) {
  datagen::GenOptions options;
  options.scale = 0.1;
  const datagen::DatasetPair pair = datagen::MakeBeers(options);
  RotomOptions rotom_options;
  rotom_options.n_label_cells = 150;
  rotom_options.ssl = true;
  RotomBaseline baseline(rotom_options);
  auto result = baseline.Detect(pair.dirty, pair.clean);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->test_metrics.accuracy, 0.5);
}

TEST(RotomBaselineTest, EmptyTableFails) {
  data::Table empty;
  RotomBaseline baseline;
  EXPECT_FALSE(baseline.Detect(empty, empty).ok());
}

}  // namespace
}  // namespace birnn::rotom
