#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.h"
#include "nn/tensor.h"

namespace birnn::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ScalarAndFull) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).scalar(), 2.5f);
  Tensor f = Tensor::Full({4}, 7.0f);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(f[i], 7.0f);
}

TEST(TensorTest, FromMatrixAndAt) {
  Tensor t = Tensor::FromMatrix(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4);
}

TEST(TensorTest, AddScaleSum) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({10, 20, 30});
  a.Add(b);
  EXPECT_FLOAT_EQ(a[0], 11);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a[2], 66);
  EXPECT_FLOAT_EQ(a.Sum(), 22 + 44 + 66);
}

TEST(TensorTest, Reshaped) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor m = t.Reshaped({2, 3});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_FLOAT_EQ(m.at(1, 0), 4);
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({1, 2});
  Tensor c = Tensor::FromVector({1, 2.0001f});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_TRUE(a.AllClose(c, 1e-3f));
  EXPECT_FALSE(a.AllClose(c, 1e-6f));
  EXPECT_FALSE(a.AllClose(Tensor(1, 2)));
}

TEST(TensorTest, ToString) {
  Tensor t = Tensor::FromMatrix(1, 3, {1, 2, 3});
  EXPECT_EQ(t.ToString(), "Tensor[1x3]{1, 2, 3}");
}

// --------------------------------------------------------------------- Ops

TEST(OpsTest, MatMulKnownResult) {
  Tensor a = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromMatrix(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c;
  MatMul(a, b, &c);
  // [[58, 64], [139, 154]]
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(OpsTest, MatMulTransposeVariantsMatchExplicit) {
  Tensor a = Tensor::FromMatrix(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromMatrix(3, 4, {1, 0, 2, 1, 3, 1, 0, 2, 0, 1, 1, 1});
  // a^T * b: (2,4)
  Tensor expected(2, 4);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 3; ++k) {
        expected.at(i, j) += a.at(k, i) * b.at(k, j);
      }
    }
  }
  Tensor got(2, 4);
  MatMulTransposeAAcc(a, b, &got);
  EXPECT_TRUE(got.AllClose(expected));

  // x * b^T with x (2,4): (2,3)
  Tensor x = Tensor::FromMatrix(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor expected2(2, 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 4; ++k) {
        expected2.at(i, j) += x.at(i, k) * b.at(j, k);
      }
    }
  }
  Tensor got2(2, 3);
  MatMulTransposeBAcc(x, b, &got2);
  EXPECT_TRUE(got2.AllClose(expected2));
}

TEST(OpsTest, AddBiasBroadcastsOverRows) {
  Tensor x = Tensor::FromMatrix(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({10, 20});
  Tensor y;
  AddBias(x, b, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11);
  EXPECT_FLOAT_EQ(y.at(1, 1), 24);
}

TEST(OpsTest, Elementwise) {
  Tensor a = Tensor::FromVector({1, -2, 3});
  Tensor b = Tensor::FromVector({2, 2, 2});
  Tensor out;
  AddElem(a, b, &out);
  EXPECT_FLOAT_EQ(out[1], 0);
  SubElem(a, b, &out);
  EXPECT_FLOAT_EQ(out[0], -1);
  MulElem(a, b, &out);
  EXPECT_FLOAT_EQ(out[2], 6);
}

TEST(OpsTest, Nonlinearities) {
  Tensor x = Tensor::FromVector({-1.0f, 0.0f, 1.0f});
  Tensor y;
  TanhElem(x, &y);
  EXPECT_NEAR(y[0], -0.761594f, 1e-5);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  ReluElem(x, &y);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  SigmoidElem(x, &y);
  EXPECT_NEAR(y[0], 0.268941f, 1e-5);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrder) {
  Tensor logits = Tensor::FromMatrix(2, 3, {1, 2, 3, 1000, 1000, 1000});
  Tensor p;
  SoftmaxRows(logits, &p);
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) sum += p.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_LT(p.at(0, 0), p.at(0, 2));
  // Large logits must not overflow (stability shift).
  EXPECT_NEAR(p.at(1, 0), 1.0f / 3.0f, 1e-5);
}

TEST(OpsTest, ConcatCols) {
  Tensor a = Tensor::FromMatrix(2, 1, {1, 2});
  Tensor b = Tensor::FromMatrix(2, 2, {3, 4, 5, 6});
  Tensor c;
  ConcatCols({&a, &b}, &c);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1);
  EXPECT_FLOAT_EQ(c.at(0, 2), 4);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5);
}

TEST(OpsTest, GatherAndScatterRows) {
  Tensor table = Tensor::FromMatrix(3, 2, {0, 1, 10, 11, 20, 21});
  Tensor out;
  GatherRows(table, {2, 0, 2}, &out);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 20);
  EXPECT_FLOAT_EQ(out.at(1, 1), 1);

  Tensor grad = Tensor::FromMatrix(3, 2, {1, 1, 2, 2, 3, 3});
  Tensor table_grad(3, 2);
  ScatterAddRows(grad, {2, 0, 2}, &table_grad);
  EXPECT_FLOAT_EQ(table_grad.at(0, 0), 2);  // from row 1
  EXPECT_FLOAT_EQ(table_grad.at(2, 0), 4);  // rows 0 and 2 accumulate
  EXPECT_FLOAT_EQ(table_grad.at(1, 0), 0);
}

TEST(OpsTest, ColSum) {
  Tensor x = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor s;
  ColSum(x, &s);
  EXPECT_FLOAT_EQ(s[0], 5);
  EXPECT_FLOAT_EQ(s[1], 7);
  EXPECT_FLOAT_EQ(s[2], 9);
}

TEST(OpsTest, SoftmaxCrossEntropyKnownValue) {
  // Uniform logits, 2 classes: loss = ln(2).
  Tensor logits = Tensor::FromMatrix(2, 2, {0, 0, 0, 0});
  Tensor probs;
  const float loss = SoftmaxCrossEntropyLoss(logits, {0, 1}, &probs);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5);
  EXPECT_NEAR(probs.at(0, 0), 0.5f, 1e-6);
}

TEST(OpsTest, SoftmaxCrossEntropyConfidentCorrect) {
  Tensor logits = Tensor::FromMatrix(1, 2, {10, -10});
  const float loss = SoftmaxCrossEntropyLoss(logits, {0}, nullptr);
  EXPECT_LT(loss, 1e-4);
}

}  // namespace
}  // namespace birnn::nn
