#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace birnn::nn {
namespace {

TEST(InitTest, GlorotUniformWithinLimit) {
  Rng rng(1);
  Tensor t(20, 30);
  GlorotUniform(&t, &rng);
  const float limit = std::sqrt(6.0f / 50.0f);
  float max_abs = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(t[i]));
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, limit * 0.5f);  // not all tiny
}

TEST(InitTest, OrthogonalRowsAreOrthonormal) {
  Rng rng(2);
  Tensor t(8, 8);
  OrthogonalInit(&t, &rng);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      float dot = 0;
      for (int k = 0; k < 8; ++k) dot += t.at(i, k) * t.at(j, k);
      EXPECT_NEAR(dot, i == j ? 1.0f : 0.0f, 1e-4) << i << "," << j;
    }
  }
}

TEST(InitTest, OrthogonalRectangular) {
  Rng rng(3);
  Tensor t(4, 6);
  OrthogonalInit(&t, &rng);
  // Rows orthonormal when rows <= cols.
  for (int i = 0; i < 4; ++i) {
    float norm = 0;
    for (int k = 0; k < 6; ++k) norm += t.at(i, k) * t.at(i, k);
    EXPECT_NEAR(norm, 1.0f, 1e-4);
  }
}

TEST(EmbeddingTest, LookupReturnsTableRows) {
  Rng rng(4);
  Embedding emb("e", 6, 3, &rng);
  Tensor out;
  emb.LookupForward({1, 5, 1}, &out);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), out.at(2, 0));  // same id, same row
  EXPECT_EQ(emb.vocab(), 6);
  EXPECT_EQ(emb.dim(), 3);
}

TEST(DenseTest, ForwardMatchesGraph) {
  Rng rng(5);
  Dense dense("d", 4, 3, Dense::Activation::kRelu, &rng);
  Tensor x(2, 4);
  NormalInit(&x, 1.0f, &rng);

  Tensor direct;
  dense.ApplyForward(x, &direct);

  Graph g;
  Graph::Var y = dense.Bind(&g).Apply(g.Input(x));
  EXPECT_TRUE(g.value(y).AllClose(direct, 1e-6f));
}

TEST(DenseTest, ActivationVariants) {
  Rng rng(6);
  Tensor x(1, 2);
  x.at(0, 0) = -5.0f;
  x.at(0, 1) = 5.0f;
  Dense none("n", 2, 2, Dense::Activation::kNone, &rng);
  Dense relu("r", 2, 2, Dense::Activation::kRelu, &rng);
  Tensor out;
  relu.ApplyForward(x, &out);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_GE(out[i], 0.0f);
}

TEST(BatchNormTest, ForwardUsesRunningStats) {
  BatchNorm1d bn("bn", 2);
  bn.SetRunningStats(Tensor::FromVector({1.0f, 2.0f}),
                     Tensor::FromVector({4.0f, 9.0f}));
  Tensor x = Tensor::FromMatrix(1, 2, {3.0f, 8.0f});
  Tensor out;
  bn.ApplyForward(x, &out);
  // (3-1)/2 = 1, (8-2)/3 = 2 (gamma=1, beta=0, eps negligible).
  EXPECT_NEAR(out.at(0, 0), 1.0f, 1e-3);
  EXPECT_NEAR(out.at(0, 1), 2.0f, 1e-3);
}

TEST(BatchNormTest, TrainUpdatesRunningStats) {
  BatchNorm1d bn("bn", 1);
  Graph g;
  Tensor x = Tensor::FromMatrix(4, 1, {10, 10, 10, 10});
  Graph::Var y = bn.Apply(&g, g.Input(x), /*training=*/true);
  (void)y;
  EXPECT_GT(bn.running_mean()[0], 0.0f);  // moved toward 10
  EXPECT_LT(bn.running_var()[0], 1.0f);   // moved toward 0
}

TEST(RnnCellTest, StepForwardMatchesGraph) {
  Rng rng(7);
  RnnCell cell("c", 3, 5, &rng);
  Tensor x(2, 3);
  Tensor h(2, 5);
  NormalInit(&x, 1.0f, &rng);
  NormalInit(&h, 1.0f, &rng);

  Tensor direct;
  cell.StepForward(x, h, &direct);

  Graph g;
  auto bound = cell.Bind(&g);
  Graph::Var y = bound.Step(g.Input(x), g.Input(h));
  EXPECT_TRUE(g.value(y).AllClose(direct, 1e-6f));
  EXPECT_EQ(direct.rows(), 2);
  EXPECT_EQ(direct.cols(), 5);
}

TEST(RnnCellTest, OutputsBoundedByTanh) {
  Rng rng(8);
  RnnCell cell("c", 2, 4, &rng);
  Tensor x = Tensor::Full({1, 2}, 100.0f);
  Tensor h(1, 4);
  Tensor out;
  cell.StepForward(x, h, &out);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(std::fabs(out[i]), 1.0f);
  }
}

class StackedBiRnnTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(StackedBiRnnTest, ForwardMatchesGraphAndShapes) {
  const int stacks = std::get<0>(GetParam());
  const bool bidirectional = std::get<1>(GetParam());
  Rng rng(9);
  StackedBiRnn rnn("r", 3, 4, stacks, bidirectional, &rng);
  EXPECT_EQ(rnn.output_dim(), bidirectional ? 8 : 4);

  const int batch = 2;
  const int t_steps = 5;
  std::vector<Tensor> steps(t_steps, Tensor(batch, 3));
  for (auto& s : steps) NormalInit(&s, 1.0f, &rng);

  Tensor direct;
  rnn.ApplyForward(steps, &direct);
  EXPECT_EQ(direct.rows(), batch);
  EXPECT_EQ(direct.cols(), rnn.output_dim());

  Graph g;
  std::vector<Graph::Var> vars;
  for (const auto& s : steps) vars.push_back(g.Input(s));
  Graph::Var y = rnn.Apply(&g, vars, batch);
  EXPECT_TRUE(g.value(y).AllClose(direct, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StackedBiRnnTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return "stacks" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_bidi" : "_uni");
    });

TEST(StackedBiRnnTest, BidirectionalSeesReversedOrder) {
  // A sequence and its reverse must produce different outputs for a
  // unidirectional RNN, demonstrating order sensitivity.
  Rng rng(10);
  StackedBiRnn rnn("r", 2, 4, 2, /*bidirectional=*/false, &rng);
  std::vector<Tensor> seq;
  for (int t = 0; t < 4; ++t) {
    Tensor x(1, 2);
    x.at(0, 0) = static_cast<float>(t);
    x.at(0, 1) = 1.0f;
    seq.push_back(x);
  }
  std::vector<Tensor> rev(seq.rbegin(), seq.rend());
  Tensor out_fwd;
  Tensor out_rev;
  rnn.ApplyForward(seq, &out_fwd);
  rnn.ApplyForward(rev, &out_rev);
  EXPECT_FALSE(out_fwd.AllClose(out_rev, 1e-3f));
}

TEST(StackedBiRnnTest, ParamCount) {
  Rng rng(11);
  // 2 stacks, bidirectional: 4 cells, each with wx, wh, bh.
  StackedBiRnn rnn("r", 3, 4, 2, true, &rng);
  EXPECT_EQ(rnn.Params().size(), 12u);
  // Level 0 wx is (3,4); level 1 wx is (4,4).
  EXPECT_EQ(CountWeights(rnn.Params()),
            2u * ((3 * 4 + 4 * 4 + 4) + (4 * 4 + 4 * 4 + 4)));
}

TEST(StackedBiRnnTest, GradientCheckThroughTime) {
  Rng rng(12);
  StackedBiRnn rnn("r", 2, 3, 2, true, &rng);
  const int batch = 2;
  std::vector<Tensor> steps(3, Tensor(batch, 2));
  Rng data_rng(13);
  for (auto& s : steps) NormalInit(&s, 0.8f, &data_rng);

  auto loss_fn = [&](bool with_backward) {
    Graph g;
    std::vector<Graph::Var> vars;
    for (const auto& s : steps) vars.push_back(g.Input(s));
    Graph::Var y = rnn.Apply(&g, vars, batch);
    Graph::Var logits =
        g.MatMul(y, g.Input(Tensor::FromMatrix(
                        6, 2, {0.3f, -0.2f, 0.1f, 0.4f, -0.1f, 0.2f, 0.5f,
                               -0.3f, 0.2f, 0.1f, -0.4f, 0.3f})));
    Graph::Var loss = g.SoftmaxCrossEntropy(logits, {0, 1});
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(14);
  GradCheckResult result = CheckParameterGradients(
      rnn.Params(), loss_fn, &check_rng, 1e-3f, 3e-2f, 6);
  EXPECT_TRUE(result.ok) << result.max_rel_diff;
}

}  // namespace
}  // namespace birnn::nn
