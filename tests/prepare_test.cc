#include <gtest/gtest.h>

#include <array>

#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "util/threadpool.h"

namespace birnn::data {
namespace {

Table MakeDirty() {
  Table t(std::vector<std::string>{"attr1", "attr2", "attr3"});
  EXPECT_TRUE(t.AppendRow({"  21", "e3", ""}).ok());
  EXPECT_TRUE(t.AppendRow({"45", "xx", "1111"}).ok());
  EXPECT_TRUE(t.AppendRow({"30", "e3", "2222"}).ok());
  return t;
}

Table MakeClean() {
  // Dirty columns may carry different header names; prepare renames by
  // position.
  Table t(std::vector<std::string>{"a1", "a2", "a3"});
  EXPECT_TRUE(t.AppendRow({"21", "e3", "abcd"}).ok());
  EXPECT_TRUE(t.AppendRow({"45", "yy", "1111"}).ok());
  EXPECT_TRUE(t.AppendRow({"12", "e3", "2222"}).ok());
  return t;
}

TEST(PrepareTest, LongFormatShape) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_tuples(), 3);
  EXPECT_EQ(frame->num_attrs(), 3);
  EXPECT_EQ(frame->num_cells(), 9);
  // Attribute names come from the clean table.
  EXPECT_EQ(frame->attr_names()[0], "a1");
}

TEST(PrepareTest, LabelsFromValueComparison) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  // "  21" left-trimmed equals "21": correct.
  EXPECT_EQ(frame->cell(0, 0).label, 0);
  // "" vs "abcd": wrong.
  EXPECT_EQ(frame->cell(0, 2).label, 1);
  // "xx" vs "yy": wrong.
  EXPECT_EQ(frame->cell(1, 1).label, 1);
  // "30" vs "12": wrong.
  EXPECT_EQ(frame->cell(2, 0).label, 1);
  EXPECT_EQ(frame->cell(2, 2).label, 0);
}

TEST(PrepareTest, EmptyFlag) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->cell(0, 2).empty);
  EXPECT_FALSE(frame->cell(0, 0).empty);
}

TEST(PrepareTest, NanTreatedAsEmpty) {
  Table dirty(std::vector<std::string>{"a"});
  ASSERT_TRUE(dirty.AppendRow({"NaN"}).ok());
  Table clean(std::vector<std::string>{"a"});
  ASSERT_TRUE(clean.AppendRow({"x"}).ok());
  auto frame = PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->cell(0, 0).empty);

  PrepareOptions opt;
  opt.treat_nan_as_empty = false;
  auto frame2 = PrepareData(dirty, clean, opt);
  ASSERT_TRUE(frame2.ok());
  EXPECT_FALSE(frame2->cell(0, 0).empty);
}

TEST(PrepareTest, ConcatIncludesAttributeAndValue) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  const std::string& concat = frame->cell(0, 1).concat;
  EXPECT_NE(concat.find("a2"), std::string::npos);
  EXPECT_NE(concat.find("e3"), std::string::npos);
  // Same attr+value in different tuples -> same concat (the key property
  // DiverSet relies on).
  EXPECT_EQ(frame->cell(0, 1).concat, frame->cell(2, 1).concat);
  // Same value under a different attribute -> different concat.
  Table dirty(std::vector<std::string>{"x", "y"});
  ASSERT_TRUE(dirty.AppendRow({"v", "v"}).ok());
  Table clean = dirty;
  auto frame2 = PrepareData(dirty, clean);
  ASSERT_TRUE(frame2.ok());
  EXPECT_NE(frame2->cell(0, 0).concat, frame2->cell(0, 1).concat);
}

TEST(PrepareTest, LengthNormPerAttribute) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  // attr3 lengths: 0, 4, 4 -> norms 0, 1, 1.
  EXPECT_FLOAT_EQ(frame->cell(0, 2).length_norm, 0.0f);
  EXPECT_FLOAT_EQ(frame->cell(1, 2).length_norm, 1.0f);
  // attr1 lengths: 2,2,2 -> all 1.
  EXPECT_FLOAT_EQ(frame->cell(0, 0).length_norm, 1.0f);
}

TEST(PrepareTest, TruncationAt128ByDefault) {
  Table dirty(std::vector<std::string>{"a"});
  ASSERT_TRUE(dirty.AppendRow({std::string(300, 'x')}).ok());
  Table clean(std::vector<std::string>{"a"});
  ASSERT_TRUE(clean.AppendRow({std::string(300, 'x')}).ok());
  auto frame = PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->cell(0, 0).value.size(), 128u);
  // Truncation must not hide the (identical) values: label stays 0.
  EXPECT_EQ(frame->cell(0, 0).label, 0);
}

TEST(PrepareTest, LabelComputedBeforeTruncation) {
  // Values differing only beyond the cut must still be labeled wrong.
  Table dirty(std::vector<std::string>{"a"});
  ASSERT_TRUE(dirty.AppendRow({std::string(200, 'x') + "1"}).ok());
  Table clean(std::vector<std::string>{"a"});
  ASSERT_TRUE(clean.AppendRow({std::string(200, 'x') + "2"}).ok());
  auto frame = PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->cell(0, 0).label, 1);
}

TEST(PrepareTest, MismatchedShapesFail) {
  Table dirty(std::vector<std::string>{"a", "b"});
  Table clean(std::vector<std::string>{"a"});
  EXPECT_FALSE(PrepareData(dirty, clean).ok());

  Table dirty2(std::vector<std::string>{"a"});
  ASSERT_TRUE(dirty2.AppendRow({"1"}).ok());
  Table clean2(std::vector<std::string>{"a"});
  EXPECT_FALSE(PrepareData(dirty2, clean2).ok());
}

TEST(PrepareTest, DirtyOnlyModeHasZeroLabels) {
  auto frame = PrepareDirtyOnly(MakeDirty());
  ASSERT_TRUE(frame.ok());
  for (const auto& cell : frame->cells()) EXPECT_EQ(cell.label, 0);
  EXPECT_EQ(frame->attr_names()[0], "attr1");  // dirty names kept
}

TEST(PrepareTest, StatsHelpers) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  EXPECT_NEAR(frame->ErrorRate(), 3.0 / 9.0, 1e-9);
  EXPECT_EQ(frame->MaxValueLength(), 4);
  EXPECT_GT(frame->DistinctCharacters(), 3);
}

// -------------------------------------------------------------- CharIndex

TEST(CharIndexTest, FirstOccurrenceOrder) {
  CharIndex idx = CharIndex::BuildFromStrings({"ba", "c"});
  EXPECT_EQ(idx.IndexOf('b'), 1);
  EXPECT_EQ(idx.IndexOf('a'), 2);
  EXPECT_EQ(idx.IndexOf('c'), 3);
  EXPECT_EQ(idx.num_chars(), 3);
  EXPECT_EQ(idx.vocab_size(), 5);  // pad + 3 + unk
}

TEST(CharIndexTest, UnknownCharsMapToUnkIndex) {
  CharIndex idx = CharIndex::BuildFromStrings({"ab"});
  EXPECT_EQ(idx.IndexOf('z'), idx.unknown_index());
  EXPECT_EQ(idx.unknown_index(), 3);
}

TEST(CharIndexTest, EncodeSequence) {
  CharIndex idx = CharIndex::BuildFromStrings({"bazy"});
  // 'b'->1, 'a'->2, 'z'->3, 'y'->4 (first occurrence).
  EXPECT_EQ(idx.Encode("bazy"), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(idx.Encode(""), (std::vector<int>{}));
}

TEST(AttributeIndexTest, Lookup) {
  AttributeIndex idx({"a", "b", "c"});
  EXPECT_EQ(idx.size(), 3);
  EXPECT_EQ(idx.IndexOf("b"), 1);
  EXPECT_EQ(idx.IndexOf("zz"), -1);
  EXPECT_EQ(idx.NameOf(2), "c");
}

// --------------------------------------------------------------- Encoding

TEST(EncodingTest, PaddingToGlobalMax) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  CharIndex chars = CharIndex::Build(*frame);
  EncodedDataset ds = EncodeCells(*frame, chars);
  EXPECT_EQ(ds.max_len, 4);
  EXPECT_EQ(ds.num_cells(), 9);
  EXPECT_EQ(ds.n_attrs, 3);
  EXPECT_EQ(ds.vocab, chars.vocab_size());
  // Cell (0,1) = "e3": two real ids then zero padding.
  const int64_t i = 0 * 3 + 1;
  EXPECT_GT(ds.seq_at(i, 0), 0);
  EXPECT_GT(ds.seq_at(i, 1), 0);
  EXPECT_EQ(ds.seq_at(i, 2), 0);
  EXPECT_EQ(ds.seq_at(i, 3), 0);
  // Empty value: all padding.
  const int64_t j = 0 * 3 + 2;
  for (int t = 0; t < 4; ++t) EXPECT_EQ(ds.seq_at(j, t), 0);
}

TEST(EncodingTest, SplitByRowIds) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  CharIndex chars = CharIndex::Build(*frame);
  EncodedDataset all = EncodeCells(*frame, chars);
  EncodedDataset train;
  EncodedDataset test;
  SplitByRowIds(all, {1}, &train, &test);
  EXPECT_EQ(train.num_cells(), 3);
  EXPECT_EQ(test.num_cells(), 6);
  for (int64_t r : train.row_ids) EXPECT_EQ(r, 1);
  for (int64_t r : test.row_ids) EXPECT_NE(r, 1);
  EXPECT_EQ(train.max_len, all.max_len);
}

// ---------------------------------------------------------- OOV counting

TEST(DictionaryOovTest, CountsOutOfVocabularyCharactersExactly) {
  const CharIndex chars = CharIndex::BuildFromStrings({"abc"});
  int64_t oov = 0;
  const std::vector<int> ids = chars.Encode("abcd#", &oov);
  EXPECT_EQ(oov, 2);  // 'd' and '#' were never seen
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[3], chars.unknown_index());
  EXPECT_EQ(ids[4], chars.unknown_index());
  // The counting overload encodes identically to the plain one.
  EXPECT_EQ(ids, chars.Encode("abcd#"));

  // The counter accumulates across calls rather than resetting.
  chars.Encode("##", &oov);
  EXPECT_EQ(oov, 4);

  // Empty value: nothing encoded, nothing counted.
  int64_t none = 0;
  EXPECT_TRUE(chars.Encode("", &none).empty());
  EXPECT_EQ(none, 0);
  // All-in-dictionary value leaves the counter untouched.
  chars.Encode("cba", &none);
  EXPECT_EQ(none, 0);
}

TEST(EncodingOovTest, OwnDictionaryHasNoMissesForeignCountsEveryOne) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());

  // A frame encoded against its own dictionary cannot miss.
  int64_t oov = 0;
  EncodeCells(*frame, CharIndex::Build(*frame), &oov);
  EXPECT_EQ(oov, 0);

  // Against a foreign dictionary, every prepared character that is not in
  // it counts — empty cells (including the ""-valued one in MakeDirty)
  // contribute nothing.
  const CharIndex foreign = CharIndex::BuildFromStrings({"e3"});
  int64_t expected = 0;
  for (const CellRecord& cell : frame->cells()) {
    for (const char c : cell.value) {
      if (c != 'e' && c != '3') ++expected;
    }
  }
  EXPECT_GT(expected, 0);
  int64_t misses = 0;
  const EncodedDataset ds = EncodeCells(*frame, foreign, &misses);
  EXPECT_EQ(misses, expected);
  EXPECT_EQ(ds.num_cells(), frame->num_cells());

  // A null counter is allowed and changes nothing about the encoding.
  const EncodedDataset quiet = EncodeCells(*frame, foreign, nullptr);
  EXPECT_EQ(quiet.seqs, ds.seqs);
}

TEST(EncodingOovTest, CountsAreDeterministicUnderTheThreadPool) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  const CharIndex foreign = CharIndex::BuildFromStrings({"e3"});
  int64_t serial = 0;
  EncodeCells(*frame, foreign, &serial);

  // Concurrent encodes with per-task counters: every task sees exactly the
  // serial count, independent of scheduling.
  constexpr int kTasks = 8;
  std::array<int64_t, kTasks> counts{};
  ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&frame, &foreign, &counts, i] {
      EncodeCells(*frame, foreign, &counts[static_cast<size_t>(i)]);
    });
  }
  pool.Wait();
  for (const int64_t count : counts) EXPECT_EQ(count, serial);
}

TEST(EncodingOovTest, EmptinessAndOovAreIndependentDimensions) {
  // treat_nan_as_empty (the default) flags a literal "NaN" as empty but
  // keeps the bytes: the 'empty' drift dimension and the character-level
  // OOV dimension account separately, so the flag must not hide the
  // characters from OOV counting.
  Table dirty(std::vector<std::string>{"a"});
  EXPECT_TRUE(dirty.AppendRow({"NaN"}).ok());
  EXPECT_TRUE(dirty.AppendRow({""}).ok());
  Table clean(std::vector<std::string>{"a"});
  EXPECT_TRUE(clean.AppendRow({"x"}).ok());
  EXPECT_TRUE(clean.AppendRow({"x"}).ok());
  auto frame = PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->cells()[0].empty);
  EXPECT_EQ(frame->cells()[0].value, "NaN");
  ASSERT_TRUE(frame->cells()[1].empty);

  const CharIndex foreign = CharIndex::BuildFromStrings({"x"});
  int64_t misses = 0;
  EncodeCells(*frame, foreign, &misses);
  EXPECT_EQ(misses, 3);  // 'N','a','N' — the truly-empty "" adds nothing
}

TEST(EncodingTest, TakeCellsPreservesOrder) {
  auto frame = PrepareData(MakeDirty(), MakeClean());
  ASSERT_TRUE(frame.ok());
  CharIndex chars = CharIndex::Build(*frame);
  EncodedDataset all = EncodeCells(*frame, chars);
  EncodedDataset subset = TakeCells(all, {4, 0, 8});
  EXPECT_EQ(subset.num_cells(), 3);
  EXPECT_EQ(subset.labels[0], all.labels[4]);
  EXPECT_EQ(subset.labels[1], all.labels[0]);
  EXPECT_EQ(subset.attrs[2], all.attrs[8]);
}

}  // namespace
}  // namespace birnn::data
