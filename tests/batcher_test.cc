// MicroBatcher contract tests: batching never changes answers, the bounded
// queue sheds with OVERLOADED, and Stop() drains every admitted request.
// This suite also runs under TSAN in CI — it is the concurrency coverage
// for the serve subsystem.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "serve/batcher.h"
#include "serve/bundle.h"

namespace birnn::serve {
namespace {

/// A small untrained detector (random weights are fine: the tests assert
/// consistency between serving paths, not accuracy).
LoadedDetector MakeTinyDetector() {
  core::TrainedDetector trained;
  trained.chars = data::CharIndex::BuildFromStrings(
      {"abcdefghijklmnopqrstuvwxyz0123456789 .-"});
  core::ModelConfig config;
  config.vocab = trained.chars.vocab_size();
  config.max_len = 12;
  config.n_attrs = 3;
  config.char_emb_dim = 8;
  config.units = 8;
  config.stacks = 1;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 4;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 8;
  config.seed = 1234;
  trained.config = config;
  trained.model = std::make_unique<core::ErrorDetectionModel>(config);
  trained.attr_names = {"id", "name", "score"};
  trained.attr_max_value_len = {8, 12, 6};
  auto loaded = MakeLoadedDetector(std::move(trained));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

std::vector<CellQuery> MakeQueries(int n, int salt) {
  std::vector<CellQuery> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    CellQuery q;
    q.attr = (i + salt) % 3;
    q.value = "v" + std::to_string((i * 7 + salt) % 23) + std::string(i % 5, 'x');
    queries.push_back(std::move(q));
  }
  return queries;
}

bool BitIdentical(const std::vector<CellVerdict>& a,
                  const std::vector<CellVerdict>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].p_error, &b[i].p_error, sizeof(float)) != 0) {
      return false;
    }
    if (a[i].is_error != b[i].is_error) return false;
  }
  return true;
}

TEST(MicroBatcherTest, BatchedMatchesOneAtATimeBitExact) {
  const LoadedDetector detector = MakeTinyDetector();
  const std::vector<CellQuery> queries = MakeQueries(48, 0);

  // Baseline: every cell alone through a window-less batcher.
  std::vector<CellVerdict> solo;
  {
    BatcherOptions opts;
    opts.max_batch = 1;
    opts.max_delay_us = 0;
    MicroBatcher batcher(detector, opts);
    for (const CellQuery& q : queries) {
      std::vector<CellVerdict> one;
      ASSERT_TRUE(batcher.Detect({q}, &one).ok());
      ASSERT_EQ(one.size(), 1u);
      solo.push_back(one[0]);
    }
  }

  // Concurrent: 8 threads hammer a batcher with an aggressive window so
  // requests genuinely coalesce; every verdict must be bit-identical to the
  // solo run regardless of batch composition.
  BatcherOptions opts;
  opts.max_batch = 32;
  opts.max_delay_us = 3000;
  MicroBatcher batcher(detector, opts);
  const int kThreads = 8;
  const int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread asks for a different contiguous slice each round.
        const size_t begin = static_cast<size_t>((t * 11 + round * 17) % 40);
        const size_t end = std::min(queries.size(), begin + 8);
        const std::vector<CellQuery> slice(queries.begin() + begin,
                                           queries.begin() + end);
        const std::vector<CellVerdict> expected(solo.begin() + begin,
                                                solo.begin() + end);
        std::vector<CellVerdict> got;
        if (!batcher.Detect(slice, &got).ok() ||
            !BitIdentical(got, expected)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kThreads * kRounds);
  EXPECT_EQ(stats.shed_requests, 0);
  EXPECT_GE(stats.batches, 1);
}

TEST(MicroBatcherTest, QueueFullShedsOverloadedAndStopDrains) {
  const LoadedDetector detector = MakeTinyDetector();
  BatcherOptions opts;
  opts.max_batch = 1024;        // never fills...
  opts.max_delay_us = 1000000;  // ...and the window is effectively forever,
  opts.queue_capacity = 4;      // so admitted requests sit in the queue.
  MicroBatcher batcher(detector, opts);

  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  // Fills the queue exactly.
  batcher.Submit(MakeQueries(4, 1),
                 [&](const Status& s, const std::vector<CellVerdict>& v) {
                   if (s.ok() && v.size() == 4) ok.fetch_add(1);
                 });
  // Queue is full: must be shed inline with OVERLOADED.
  batcher.Submit(MakeQueries(1, 2),
                 [&](const Status& s, const std::vector<CellVerdict>&) {
                   if (s.code() == StatusCode::kOverloaded) {
                     overloaded.fetch_add(1);
                   }
                 });
  EXPECT_EQ(overloaded.load(), 1);

  // Stop() drains: the admitted 4-cell request is answered OK.
  batcher.Stop();
  EXPECT_EQ(ok.load(), 1);

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.cells, 4);
  EXPECT_EQ(stats.shed_requests, 1);
  EXPECT_EQ(stats.shed_cells, 1);
}

TEST(MicroBatcherTest, RequestLargerThanCapacityIsAlwaysShed) {
  const LoadedDetector detector = MakeTinyDetector();
  BatcherOptions opts;
  opts.queue_capacity = 2;
  MicroBatcher batcher(detector, opts);
  // Even on an idle batcher a 3-cell request can never be admitted — the
  // deterministic forced-shed case the CI smoke job exercises.
  std::vector<CellVerdict> verdicts;
  const Status st = batcher.Detect(MakeQueries(3, 0), &verdicts);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(verdicts.empty());
}

TEST(MicroBatcherTest, StopAnswersEveryAdmittedRequest) {
  const LoadedDetector detector = MakeTinyDetector();
  BatcherOptions opts;
  opts.max_batch = 16;
  opts.max_delay_us = 500;
  MicroBatcher batcher(detector, opts);

  const int kRequests = 24;
  std::atomic<int> answered{0};
  std::atomic<int> answered_ok{0};
  for (int i = 0; i < kRequests; ++i) {
    batcher.Submit(MakeQueries(2 + i % 3, i),
                   [&](const Status& s, const std::vector<CellVerdict>&) {
                     answered.fetch_add(1);
                     if (s.ok()) answered_ok.fetch_add(1);
                   });
  }
  batcher.Stop();
  // Every admitted request was answered (with OK — nothing here sheds)
  // before Stop returned.
  EXPECT_EQ(answered.load(), kRequests);
  EXPECT_EQ(answered_ok.load(), kRequests);

  // After Stop, submits are refused with FailedPrecondition, not dropped.
  Status post;
  batcher.Submit(MakeQueries(1, 0),
                 [&](const Status& s, const std::vector<CellVerdict>&) {
                   post = s;
                 });
  EXPECT_EQ(post.code(), StatusCode::kFailedPrecondition);
}

TEST(MicroBatcherTest, ReplicasAnswerBitIdenticallyToSoloRun) {
  const LoadedDetector detector = MakeTinyDetector();
  const std::vector<CellQuery> queries = MakeQueries(48, 0);

  // Baseline: one replica, no memo, one cell at a time.
  std::vector<CellVerdict> solo;
  {
    BatcherOptions opts;
    opts.max_batch = 1;
    opts.max_delay_us = 0;
    opts.memo_capacity = 0;
    MicroBatcher batcher(detector, opts);
    for (const CellQuery& q : queries) {
      std::vector<CellVerdict> one;
      ASSERT_TRUE(batcher.Detect({q}, &one).ok());
      solo.push_back(one[0]);
    }
  }

  // 4 engine replicas + shared memo under concurrent load: bit-identical.
  BatcherOptions opts;
  opts.max_batch = 16;
  opts.max_delay_us = 1000;
  opts.replicas = 4;
  MicroBatcher batcher(detector, opts);
  const int kThreads = 8;
  const int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t begin = static_cast<size_t>((t * 13 + round * 7) % 40);
        const size_t end = std::min(queries.size(), begin + 8);
        const std::vector<CellQuery> slice(queries.begin() + begin,
                                           queries.begin() + end);
        const std::vector<CellVerdict> expected(solo.begin() + begin,
                                                solo.begin() + end);
        std::vector<CellVerdict> got;
        if (!batcher.Detect(slice, &got).ok() ||
            !BitIdentical(got, expected)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kThreads * kRounds);
  // The workload repeats the same 48 cell contents across 8x6 requests, so
  // the shared memo must have been doing real work.
  EXPECT_GT(stats.memo_hits, 0);
  EXPECT_GT(stats.memo_entries, 0);
  EXPECT_LE(stats.memo_entries, 48);
}

TEST(MicroBatcherTest, MemoHitsAreBitExactAndBounded) {
  const LoadedDetector detector = MakeTinyDetector();
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  opts.memo_capacity = 16;  // tiny: forces evictions on a 48-content stream
  MicroBatcher batcher(detector, opts);

  const std::vector<CellQuery> queries = MakeQueries(48, 3);
  std::vector<CellVerdict> first;
  ASSERT_TRUE(batcher.Detect(queries, &first).ok());
  // Re-asking the exact same cells must reproduce the same floats whether
  // each answer comes from the memo or a fresh engine run.
  for (int round = 0; round < 3; ++round) {
    std::vector<CellVerdict> again;
    ASSERT_TRUE(batcher.Detect(queries, &again).ok());
    EXPECT_TRUE(BitIdentical(first, again)) << "round " << round;
  }
  EXPECT_LE(batcher.stats().memo_entries, 16 + 48);  // bounded, not exact LRU
}

TEST(MicroBatcherTest, MemoDisabledStillServes) {
  const LoadedDetector detector = MakeTinyDetector();
  BatcherOptions opts;
  opts.memo_capacity = 0;
  MicroBatcher batcher(detector, opts);
  std::vector<CellVerdict> a, b;
  ASSERT_TRUE(batcher.Detect(MakeQueries(6, 1), &a).ok());
  ASSERT_TRUE(batcher.Detect(MakeQueries(6, 1), &b).ok());
  EXPECT_TRUE(BitIdentical(a, b));
  EXPECT_EQ(batcher.stats().memo_hits, 0);
  EXPECT_EQ(batcher.stats().memo_entries, 0);
}

TEST(MicroBatcherTest, ConcurrentStopIsSafe) {
  const LoadedDetector detector = MakeTinyDetector();
  MicroBatcher batcher(detector);
  std::vector<CellVerdict> verdicts;
  ASSERT_TRUE(batcher.Detect(MakeQueries(3, 0), &verdicts).ok());
  std::thread a([&] { batcher.Stop(); });
  std::thread b([&] { batcher.Stop(); });
  a.join();
  b.join();
}

TEST(MicroBatcherTest, EmptyRequestAnswersInline) {
  const LoadedDetector detector = MakeTinyDetector();
  MicroBatcher batcher(detector);
  std::vector<CellVerdict> verdicts = {CellVerdict{0.5f, false}};
  ASSERT_TRUE(batcher.Detect({}, &verdicts).ok());
  EXPECT_TRUE(verdicts.empty());
}

TEST(MicroBatcherTest, UnknownAttributeIsRejectedNotShed) {
  const LoadedDetector detector = MakeTinyDetector();
  MicroBatcher batcher(detector);
  CellQuery bad;
  bad.attr_name = "no_such_attribute";
  bad.value = "v";
  std::vector<CellVerdict> verdicts;
  const Status st = batcher.Detect({bad}, &verdicts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.rejected_requests, 1);
  EXPECT_EQ(stats.shed_requests, 0);
}

}  // namespace
}  // namespace birnn::serve
