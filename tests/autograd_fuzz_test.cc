// Property-based fuzzing of the autodiff engine: random operator DAGs over
// random parameters must have analytic gradients that agree with central
// finite differences. This is the strongest single invariant the
// neural-network substrate offers — every op's forward and backward are
// checked jointly under random composition.

#include <gtest/gtest.h>

#include <vector>

#include "nn/gradcheck.h"
#include "nn/graph.h"
#include "nn/init.h"

namespace birnn::nn {
namespace {

/// Builds a random DAG of elementwise/matrix ops over the two parameters
/// and returns a scalar loss node. Deterministic per seed.
Graph::Var BuildRandomDag(Graph* g, Parameter* a, Parameter* b,
                          uint64_t seed) {
  Rng rng(seed);
  const int rows = a->value.rows();
  const int cols = a->value.cols();

  std::vector<Graph::Var> pool{g->Param(a), g->Param(b)};
  const int ops = static_cast<int>(rng.UniformRange(3, 8));
  for (int i = 0; i < ops; ++i) {
    const Graph::Var x = pool[rng.UniformInt(pool.size())];
    const Graph::Var y = pool[rng.UniformInt(pool.size())];
    Graph::Var out;
    switch (rng.UniformInt(8)) {
      case 0:
        out = g->Add(x, y);
        break;
      case 1:
        out = g->Sub(x, y);
        break;
      case 2:
        out = g->Mul(x, y);
        break;
      case 3:
        out = g->Tanh(x);
        break;
      case 4:
        out = g->Sigmoid(x);
        break;
      case 5:
        out = g->Relu(x);
        break;
      case 6:
        out = g->ScaleBy(x, rng.UniformFloat(0.3f, 1.8f));
        break;
      default: {
        // Keep the shape (rows, cols) via a fixed square projection.
        Tensor proj(cols, cols);
        Rng proj_rng(seed ^ 0xF00ULL ^ static_cast<uint64_t>(i));
        NormalInit(&proj, 0.4f, &proj_rng);
        out = g->MatMul(x, g->Input(proj));
        break;
      }
    }
    pool.push_back(out);
  }
  // Head: concat the last two results, project to 2 classes, cross-entropy.
  Graph::Var joined = g->ConcatCols({pool[pool.size() - 1],
                                     pool[pool.size() - 2]});
  Tensor head(2 * cols, 2);
  Rng head_rng(seed ^ 0xEADULL);
  NormalInit(&head, 0.3f, &head_rng);
  Graph::Var logits = g->MatMul(joined, g->Input(head));
  std::vector<int> labels(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) labels[static_cast<size_t>(i)] = i % 2;
  return g->SoftmaxCrossEntropy(logits, labels);
}

class AutogradFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzz, RandomDagGradientsMatchFiniteDifferences) {
  const uint64_t seed = GetParam();
  Rng init_rng(seed ^ 0x1234ULL);
  Parameter a("a", Tensor(3, 4));
  Parameter b("b", Tensor(3, 4));
  NormalInit(&a.value, 0.5f, &init_rng);
  NormalInit(&b.value, 0.5f, &init_rng);

  auto loss_fn = [&](bool with_backward) {
    Graph g;
    Graph::Var loss = BuildRandomDag(&g, &a, &b, seed);
    if (with_backward) g.Backward(loss);
    return g.value(loss).scalar();
  };
  Rng check_rng(seed ^ 0x777ULL);
  const GradCheckResult result = CheckParameterGradients(
      {&a, &b}, loss_fn, &check_rng, 1e-3f, 3e-2f, 10);
  EXPECT_TRUE(result.ok) << "seed " << seed
                         << " max_rel_diff=" << result.max_rel_diff;
  EXPECT_GT(result.checked_elements, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzz,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace birnn::nn
