#include "core/content_index.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "core/model.h"
#include "data/encoding.h"

namespace birnn::core {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// `n` cells whose content is `content_of(i)` — equal arguments produce
/// bit-identical model inputs, distinct arguments produce distinct content
/// (the id digits spell the argument in base vocab-3). `vocab` > 130 also
/// exercises multi-byte id varints in the packed-key codec.
data::EncodedDataset MakeCells(int64_t n, int64_t distinct, int max_len = 10,
                               int vocab = 64) {
  data::EncodedDataset ds;
  ds.max_len = max_len;
  ds.vocab = vocab;
  ds.n_attrs = 4;
  ds.seqs.assign(static_cast<size_t>(n) * max_len, 0);
  ds.attrs.resize(static_cast<size_t>(n));
  ds.length_norm.resize(static_cast<size_t>(n));
  ds.labels.assign(static_cast<size_t>(n), 0);
  ds.row_ids.resize(static_cast<size_t>(n));
  const int64_t base = vocab - 3;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = distinct > 0 ? i % distinct : i;
    ds.attrs[static_cast<size_t>(i)] = static_cast<int32_t>(c % 4);
    int64_t v = c;
    int len = 0;
    int32_t* row = ds.seqs.data() + static_cast<size_t>(i) * max_len;
    do {
      row[len++] = static_cast<int32_t>(1 + v % base);
      v /= base;
    } while (v > 0 && len < max_len);
    ds.length_norm[static_cast<size_t>(i)] =
        static_cast<float>(len) / static_cast<float>(max_len);
    ds.row_ids[static_cast<size_t>(i)] = i;
  }
  return ds;
}

/// A deterministic verdict that is a pure function of cell content, so
/// concurrent writers of duplicate cells agree (the memo's contract).
float PFor(const data::EncodedDataset& ds, int64_t i) {
  return static_cast<float>(ds.CellContentHash(i) % 997) / 997.0f;
}

std::vector<uint8_t> PackedKey(const data::EncodedDataset& ds, int64_t i) {
  std::vector<uint8_t> key;
  AppendPackedCellKey(ds, i, &key);
  return key;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Packed cell keys
// ---------------------------------------------------------------------------

TEST(PackedKeyTest, CanonicalAndInjective) {
  const data::EncodedDataset ds = MakeCells(300, 100);
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    const std::vector<uint8_t> a = PackedKey(ds, i);
    EXPECT_TRUE(PackedKeyMatchesCell(a.data(), a.size(), ds, i)) << i;
    for (int64_t j = i + 1; j < std::min<int64_t>(ds.num_cells(), i + 120);
         ++j) {
      const std::vector<uint8_t> b = PackedKey(ds, j);
      EXPECT_EQ(a == b, ds.CellContentEquals(i, j)) << i << " vs " << j;
    }
  }
}

TEST(PackedKeyTest, HashReconstructionMatchesCellContentHash) {
  // The table keeps only 32-bit hash tags; grow and spill rebuild the full
  // hash from the stored key. A mismatch here would silently misplace
  // entries (turning hits into recomputes), so every field must round-trip
  // — including multi-byte id varints.
  for (int vocab : {64, 300}) {
    const data::EncodedDataset ds = MakeCells(500, 0, 10, vocab);
    for (int64_t i = 0; i < ds.num_cells(); ++i) {
      const std::vector<uint8_t> key = PackedKey(ds, i);
      EXPECT_EQ(PackedKeyContentHash(key.data(), key.size()),
                ds.CellContentHash(i))
          << "vocab " << vocab << " cell " << i;
    }
  }
}

TEST(PackedKeyTest, MalformedKeyHashesToZero) {
  const data::EncodedDataset ds = MakeCells(4, 0);
  const std::vector<uint8_t> key = PackedKey(ds, 0);
  EXPECT_EQ(0u, PackedKeyContentHash(key.data(), key.size() - 1));
  EXPECT_EQ(0u, PackedKeyContentHash(key.data(), 0));
}

// ---------------------------------------------------------------------------
// Blocked bloom filter
// ---------------------------------------------------------------------------

TEST(BlockedBloomTest, NoFalseNegatives) {
  BlockedBloom bloom;
  bloom.Reset(4096, 10.0);
  ASSERT_TRUE(bloom.enabled());
  for (uint64_t i = 0; i < 4096; ++i) bloom.Add(Mix64(i));
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_TRUE(bloom.MayContain(Mix64(i))) << i;
  }
}

TEST(BlockedBloomTest, FalsePositiveRateBounded) {
  BlockedBloom bloom;
  bloom.Reset(4096, 10.0);
  for (uint64_t i = 0; i < 4096; ++i) bloom.Add(Mix64(i));
  int64_t fps = 0;
  const int64_t probes = 40000;
  for (int64_t i = 0; i < probes; ++i) {
    if (bloom.MayContain(Mix64(0x8000000000000000ULL + i))) ++fps;
  }
  // ~1-2% expected at 10 bits/key with the capped probe count; 5% is a
  // generous regression bound.
  EXPECT_LT(static_cast<double>(fps) / probes, 0.05) << fps;
}

TEST(BlockedBloomTest, DisabledFilterNeverFiltersOrAllocates) {
  BlockedBloom bloom;
  EXPECT_FALSE(bloom.enabled());
  EXPECT_TRUE(bloom.MayContain(123));
  bloom.Reset(0, 10.0);
  EXPECT_FALSE(bloom.enabled());
  bloom.Reset(1024, 0.0);
  EXPECT_FALSE(bloom.enabled());
  EXPECT_EQ(0, bloom.bytes());
}

// ---------------------------------------------------------------------------
// Spill segments
// ---------------------------------------------------------------------------

std::vector<SpillRecord> MakeRecords(int n) {
  std::vector<SpillRecord> records;
  for (int i = 0; i < n; ++i) {
    SpillRecord r;
    r.hash = Mix64(static_cast<uint64_t>(i));
    r.p_error = static_cast<float>(i) / 1000.0f;
    r.key.assign(static_cast<size_t>(1 + i % 13),
                 static_cast<uint8_t>(i * 7));
    records.push_back(std::move(r));
  }
  // Two records sharing a hash but not a key: Find must confirm the key,
  // never answer on the hash alone.
  SpillRecord a, b;
  a.hash = b.hash = 0x1234567890ABCDEFULL;
  a.key = {1, 2, 3};
  b.key = {1, 2, 4};
  a.p_error = 0.25f;
  b.p_error = 0.75f;
  records.push_back(a);
  records.push_back(b);
  return records;
}

TEST(SpillSegmentTest, WriteOpenFindRoundTrip) {
  const std::string path = TempPath("birnn_segment_roundtrip.seg");
  const std::vector<SpillRecord> records = MakeRecords(200);
  ASSERT_TRUE(SpillSegment::Write(path, records).ok());
  auto opened = SpillSegment::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const SpillSegment segment = std::move(opened).value();
  EXPECT_EQ(static_cast<int64_t>(records.size()), segment.count());
  for (const SpillRecord& r : records) {
    float p = -1.0f;
    ASSERT_TRUE(segment.Find(r.hash, r.key.data(), r.key.size(), &p));
    EXPECT_EQ(0, std::memcmp(&p, &r.p_error, sizeof(float)));
  }
  float p;
  const uint8_t absent_key[3] = {9, 9, 9};
  EXPECT_FALSE(segment.Find(Mix64(1) ^ 1, absent_key, 3, &p));
  EXPECT_FALSE(segment.Find(0x1234567890ABCDEFULL, absent_key, 3, &p));
  std::filesystem::remove(path);
}

TEST(SpillSegmentTest, RefusesCorruptOrTruncatedFiles) {
  const std::string path = TempPath("birnn_segment_corrupt.seg");
  ASSERT_TRUE(SpillSegment::Write(path, MakeRecords(64)).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 40u);

  // Flip one payload byte: the whole-file checksum must catch it.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  EXPECT_FALSE(SpillSegment::Open(path).ok());

  // Truncation must be refused too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_FALSE(SpillSegment::Open(path).ok());

  // Not a segment at all.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a segment";
  }
  EXPECT_FALSE(SpillSegment::Open(path).ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// ContentMemo
// ---------------------------------------------------------------------------

TEST(ContentMemoTest, ExactHitsThroughLazyInitAndGrowth) {
  // expected_entries = 0 starts each shard at its minimum table and grows
  // through several rehashes (which rebuild full hashes from 32-bit tags
  // via the packed keys) — every verdict must survive bit-exactly.
  const data::EncodedDataset ds = MakeCells(5000, 0);
  ContentMemoOptions options;
  options.capacity = 1 << 16;
  ContentMemo memo(options);
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    memo.Insert(ds, i, PFor(ds, i));
    memo.Insert(ds, i, -1.0f);  // duplicate insert: first value wins.
  }
  EXPECT_EQ(5000, memo.entries());

  std::vector<float> p(static_cast<size_t>(ds.num_cells()), -2.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  EXPECT_EQ(5000, memo.Lookup(ds, &p, &hit));
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    ASSERT_EQ(1, hit[static_cast<size_t>(i)]) << i;
    const float want = PFor(ds, i);
    EXPECT_EQ(0, std::memcmp(&p[static_cast<size_t>(i)], &want, 4)) << i;
  }
  const ContentMemoStats stats = memo.stats();
  EXPECT_EQ(5000, stats.hits);
  EXPECT_EQ(0, stats.evictions);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_EQ(stats.bytes, memo.bytes());
}

TEST(ContentMemoTest, MultiByteIdVarintsRoundTrip) {
  const data::EncodedDataset ds = MakeCells(800, 0, 10, 300);
  ContentMemo memo;
  for (int64_t i = 0; i < ds.num_cells(); ++i) memo.Insert(ds, i, PFor(ds, i));
  std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  EXPECT_EQ(ds.num_cells(), memo.Lookup(ds, &p, &hit));
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    const float want = PFor(ds, i);
    EXPECT_EQ(0, std::memcmp(&p[static_cast<size_t>(i)], &want, 4)) << i;
  }
}

TEST(ContentMemoTest, FreshContentIsBloomNegative) {
  const data::EncodedDataset ds = MakeCells(2000, 0);
  ContentMemo memo;
  std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  EXPECT_EQ(0, memo.Lookup(ds, &p, &hit));
  const ContentMemoStats stats = memo.stats();
  EXPECT_EQ(2000, stats.lookups);
  // On an empty memo nearly every probe short-circuits lock-free.
  EXPECT_GT(stats.bloom_negatives, 1900);
  EXPECT_EQ(stats.hits, 0);
}

TEST(ContentMemoTest, BudgetEvictsButNeverLies) {
  const data::EncodedDataset ds = MakeCells(6000, 0);
  ContentMemoOptions options;
  options.capacity = 1 << 16;
  options.budget_bytes = 24 * 1024;
  ContentMemo memo(options);
  for (int64_t i = 0; i < ds.num_cells(); ++i) memo.Insert(ds, i, PFor(ds, i));
  EXPECT_GT(memo.evictions(), 0);
  EXPECT_LE(memo.bytes(), options.budget_bytes);

  std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  const int64_t hits = memo.Lookup(ds, &p, &hit);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, ds.num_cells());
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    if (!hit[static_cast<size_t>(i)]) continue;
    const float want = PFor(ds, i);
    EXPECT_EQ(0, std::memcmp(&p[static_cast<size_t>(i)], &want, 4)) << i;
  }
}

TEST(ContentMemoTest, SpilledSegmentsKeepServingEveryVerdict) {
  const std::string dir = TempPath("birnn_memo_spill_test");
  std::filesystem::remove_all(dir);
  const data::EncodedDataset ds = MakeCells(6000, 0);
  ContentMemoOptions options;
  options.capacity = 1 << 16;
  options.budget_bytes = 24 * 1024;
  options.spill = true;
  options.spill_dir = dir;
  {
    ContentMemo memo(options);
    for (int64_t i = 0; i < ds.num_cells(); ++i) {
      memo.Insert(ds, i, PFor(ds, i));
    }
    const ContentMemoStats stats = memo.stats();
    EXPECT_GT(stats.spilled_segments, 0);
    EXPECT_GT(stats.spilled_entries, 0);
    EXPECT_EQ(0, stats.spill_failures);
    EXPECT_LE(stats.bytes, options.budget_bytes);

    // Unlike eviction, spill loses nothing: every inserted verdict is
    // still answered, resident or via pread from a sealed segment.
    std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
    std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
    EXPECT_EQ(ds.num_cells(), memo.Lookup(ds, &p, &hit));
    for (int64_t i = 0; i < ds.num_cells(); ++i) {
      const float want = PFor(ds, i);
      EXPECT_EQ(0, std::memcmp(&p[static_cast<size_t>(i)], &want, 4)) << i;
    }
    EXPECT_GT(memo.stats().spill_hits, 0);
  }
  // The memo owns its segment files and removes them on destruction.
  EXPECT_TRUE(!std::filesystem::exists(dir) ||
              std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(ContentMemoTest, UnwritableSpillDirDegradesToEviction) {
  const data::EncodedDataset ds = MakeCells(6000, 0);
  ContentMemoOptions options;
  options.capacity = 1 << 16;
  options.budget_bytes = 24 * 1024;
  options.spill = true;
  options.spill_dir = "/dev/null/not-a-directory";
  ContentMemo memo(options);
  for (int64_t i = 0; i < ds.num_cells(); ++i) memo.Insert(ds, i, PFor(ds, i));
  const ContentMemoStats stats = memo.stats();
  EXPECT_GT(stats.spill_failures, 0);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(0, stats.spilled_segments);
  // Degraded, bounded, and still never wrong.
  std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  memo.Lookup(ds, &p, &hit);
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    if (!hit[static_cast<size_t>(i)]) continue;
    const float want = PFor(ds, i);
    EXPECT_EQ(0, std::memcmp(&p[static_cast<size_t>(i)], &want, 4)) << i;
  }
  EXPECT_LE(memo.bytes(), options.budget_bytes);
}

TEST(ContentMemoTest, DisabledMemoIsInert) {
  const data::EncodedDataset ds = MakeCells(100, 0);
  ContentMemoOptions options;
  options.capacity = 0;
  ContentMemo memo(options);
  EXPECT_FALSE(memo.enabled());
  memo.Insert(ds, 0, 0.5f);
  std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  EXPECT_EQ(0, memo.Lookup(ds, &p, &hit));
  EXPECT_EQ(0, memo.entries());
}

ModelConfig TinyConfig(const data::EncodedDataset& ds) {
  ModelConfig config;
  config.vocab = ds.vocab;
  config.max_len = ds.max_len;
  config.n_attrs = ds.n_attrs;
  config.char_emb_dim = 6;
  config.units = 8;
  config.stacks = 1;
  config.bidirectional = true;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 3;
  config.length_dense_dim = 6;
  config.hidden_dense_dim = 6;
  config.seed = 23;
  return config;
}

TEST(ContentMemoTest, EvictionDeterminismBitExact) {
  // The acceptance contract: a budgeted, evicting memo must produce the
  // same bits as the unbounded memo and as the memo-free engine — an
  // evicted entry merely recomputes through the same pure forward path.
  const data::EncodedDataset ds = MakeCells(600, 150);
  ErrorDetectionModel model(TinyConfig(ds));
  InferenceEngine engine(model);

  std::vector<float> base;
  engine.PredictProbs(ds, {}, &base);

  ContentMemoOptions unbounded;
  unbounded.capacity = 1 << 16;
  ContentMemo memo_a(unbounded);

  ContentMemoOptions budgeted;
  budgeted.capacity = 1 << 16;
  budgeted.budget_bytes = 3 * 1024;
  ContentMemo memo_b(budgeted);

  for (int sweep = 0; sweep < 3; ++sweep) {
    std::vector<float> pa, pb;
    engine.PredictProbsMemoized(ds, &memo_a, &pa);
    engine.PredictProbsMemoized(ds, &memo_b, &pb);
    ASSERT_EQ(base.size(), pa.size());
    ASSERT_EQ(base.size(), pb.size());
    EXPECT_EQ(0, std::memcmp(base.data(), pa.data(),
                             base.size() * sizeof(float)))
        << "unbounded memo diverged on sweep " << sweep;
    EXPECT_EQ(0, std::memcmp(base.data(), pb.data(),
                             base.size() * sizeof(float)))
        << "evicting memo diverged on sweep " << sweep;
  }
  EXPECT_GT(memo_b.evictions(), 0)
      << "budget never triggered — the test is not exercising eviction";
  // 3 KiB is below the structural floor (16 minimum shard tables + the
  // bloom), so no byte assertion here; BudgetEvictsButNeverLies covers the
  // bound at a budget the floor fits under.
}

TEST(ContentMemoTest, ConcurrentInsertLookupIsSafeAndExact) {
  // TSAN leg: hammer the striped shards + lock-free bloom from several
  // threads. Verdicts are functions of content, so overlapping writers
  // always agree; afterwards every entry must read back bit-exactly.
  const data::EncodedDataset ds = MakeCells(4000, 1000);
  ContentMemoOptions options;
  options.capacity = 1 << 16;
  ContentMemo memo(options);
  const int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ds, &memo, t] {
      std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
      std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
      for (int64_t i = t; i < ds.num_cells(); i += kThreads) {
        memo.Insert(ds, i, PFor(ds, i));
        if (i % 512 == 0) {
          std::fill(hit.begin(), hit.end(), 0);
          memo.Lookup(ds, &p, &hit);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(1000, memo.entries());
  std::vector<float> p(static_cast<size_t>(ds.num_cells()), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(ds.num_cells()), 0);
  EXPECT_EQ(ds.num_cells(), memo.Lookup(ds, &p, &hit));
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    const float want = PFor(ds, i);
    EXPECT_EQ(0, std::memcmp(&p[static_cast<size_t>(i)], &want, 4)) << i;
  }
}

TEST(DatasetContentFingerprintTest, SensitiveToContentAndShape) {
  const data::EncodedDataset a = MakeCells(100, 0);
  data::EncodedDataset b = MakeCells(100, 0);
  EXPECT_EQ(DatasetContentFingerprint(a), DatasetContentFingerprint(b));
  b.seqs[5] += 1;
  EXPECT_NE(DatasetContentFingerprint(a), DatasetContentFingerprint(b));
  const data::EncodedDataset c = MakeCells(101, 0);
  EXPECT_NE(DatasetContentFingerprint(a), DatasetContentFingerprint(c));
}

}  // namespace
}  // namespace birnn::core
