#include <gtest/gtest.h>

#include <set>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"

namespace birnn::core {
namespace {

DetectorOptions FastOptions(const std::string& model) {
  DetectorOptions options;
  options.model = model;
  options.sampler = "diverset";
  options.n_label_tuples = 15;
  options.units = 16;
  options.char_emb_dim = 8;
  options.trainer.epochs = 30;
  options.seed = 11;
  return options;
}

TEST(ErrorDetectorTest, EndToEndOnHospitalStyleData) {
  // Hospital is the paper's easiest dataset (errors marked with 'x').
  datagen::GenOptions gen;
  gen.scale = 0.12;
  gen.seed = 3;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);

  ErrorDetector detector(FastOptions("etsb"));
  auto report = detector.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->labeled_tuples.size(), 15u);
  EXPECT_EQ(report->predicted.size(),
            static_cast<size_t>(pair.dirty.num_rows()) *
                pair.dirty.num_columns());
  EXPECT_EQ(report->train_cells, 15 * pair.dirty.num_columns());
  EXPECT_EQ(report->test_cells,
            static_cast<int64_t>(pair.dirty.num_rows() - 15) *
                pair.dirty.num_columns());
  EXPECT_GT(report->test_metrics.f1, 0.5)
      << "F1=" << report->test_metrics.f1;
  EXPECT_FALSE(report->history.epochs.empty());
}

TEST(ErrorDetectorTest, TsbModelAlsoWorks) {
  datagen::GenOptions gen;
  gen.scale = 0.08;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  ErrorDetector detector(FastOptions("tsb"));
  auto report = detector.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->test_metrics.f1, 0.4);
}

TEST(ErrorDetectorTest, InvalidModelNameFails) {
  datagen::GenOptions gen;
  gen.scale = 0.03;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  DetectorOptions options = FastOptions("gru");
  ErrorDetector detector(options);
  auto report = detector.Run(pair.dirty, pair.clean);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorDetectorTest, InvalidSamplerNameFails) {
  datagen::GenOptions gen;
  gen.scale = 0.03;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  DetectorOptions options = FastOptions("etsb");
  options.sampler = "bogus";
  ErrorDetector detector(options);
  EXPECT_FALSE(detector.Run(pair.dirty, pair.clean).ok());
}

TEST(ErrorDetectorTest, OracleModeNeedsNoCleanTable) {
  // Deployment mode: oracle flags values containing 'x'.
  datagen::GenOptions gen;
  gen.scale = 0.06;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  DetectorOptions options = FastOptions("etsb");
  options.trainer.epochs = 10;
  ErrorDetector detector(options);

  LabelOracle oracle = [&pair](int64_t row, int attr) {
    return pair.dirty.cell(static_cast<int>(row), attr) !=
                   pair.clean.cell(static_cast<int>(row), attr)
               ? 1
               : 0;
  };
  auto report = detector.RunWithOracle(pair.dirty, oracle);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->truth.empty());
  EXPECT_EQ(report->predicted.size(),
            static_cast<size_t>(pair.dirty.num_rows()) *
                pair.dirty.num_columns());
}

TEST(ErrorDetectorTest, FdEnsembleFlagsAtLeastAsMuch) {
  datagen::GenOptions gen;
  gen.scale = 0.06;
  gen.seed = 9;
  const datagen::DatasetPair pair = datagen::MakeTax(gen);

  DetectorOptions base = FastOptions("etsb");
  base.trainer.epochs = 12;
  ErrorDetector plain(base);
  auto report_plain = plain.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(report_plain.ok());

  base.use_fd_ensemble = true;
  ErrorDetector ensembled(base);
  auto report_fd = ensembled.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(report_fd.ok());

  int64_t plain_flags = 0;
  int64_t fd_flags = 0;
  for (uint8_t p : report_plain->predicted) plain_flags += p;
  for (uint8_t p : report_fd->predicted) fd_flags += p;
  EXPECT_GE(fd_flags, plain_flags);  // ensemble only ORs verdicts in
}

TEST(ErrorDetectorTest, DeterministicForSameSeed) {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  DetectorOptions options = FastOptions("etsb");
  options.trainer.epochs = 5;
  ErrorDetector a(options);
  ErrorDetector b(options);
  auto ra = a.Run(pair.dirty, pair.clean);
  auto rb = b.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->predicted, rb->predicted);
  EXPECT_EQ(ra->labeled_tuples, rb->labeled_tuples);
}

TEST(ErrorDetectorTest, ThreadedEvalMatchesSequential) {
  datagen::GenOptions gen;
  gen.scale = 0.04;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  DetectorOptions options = FastOptions("etsb");
  options.trainer.epochs = 5;
  ErrorDetector sequential(options);
  auto seq_report = sequential.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(seq_report.ok());

  options.eval_threads = 3;
  ErrorDetector threaded(options);
  auto thr_report = threaded.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(thr_report.ok());
  EXPECT_EQ(seq_report->predicted, thr_report->predicted);
}

TEST(BuildModelConfigTest, MapsOptions) {
  DetectorOptions options;
  options.model = "etsb";
  options.units = 32;
  options.stacks = 1;
  options.bidirectional = false;
  const ModelConfig config = BuildModelConfig(options, 50, 20, 7);
  EXPECT_EQ(config.vocab, 50);
  EXPECT_EQ(config.max_len, 20);
  EXPECT_EQ(config.n_attrs, 7);
  EXPECT_EQ(config.units, 32);
  EXPECT_EQ(config.stacks, 1);
  EXPECT_FALSE(config.bidirectional);
  EXPECT_TRUE(config.enriched);
  EXPECT_FALSE(BuildModelConfig(DetectorOptions{.model = "tsb"}, 5, 5, 5)
                   .enriched);
}

}  // namespace
}  // namespace birnn::core
