#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "nn/ops.h"
#include "util/rng.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "nn/optimizer.h"

namespace birnn::core {
namespace {

ModelConfig SmallConfig(bool enriched) {
  ModelConfig config;
  config.vocab = 12;
  config.max_len = 6;
  config.n_attrs = 3;
  config.char_emb_dim = 5;
  config.units = 7;
  config.stacks = 2;
  config.bidirectional = true;
  config.enriched = enriched;
  config.attr_emb_dim = 4;
  config.attr_units = 3;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 6;
  config.seed = 17;
  return config;
}

BatchInput SmallBatch(const ModelConfig& config, int batch, uint64_t seed) {
  Rng rng(seed);
  BatchInput b;
  b.batch = batch;
  b.char_steps.assign(static_cast<size_t>(config.max_len),
                      std::vector<int>(static_cast<size_t>(batch)));
  for (auto& step : b.char_steps) {
    for (auto& id : step) {
      id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(config.vocab)));
    }
  }
  for (int i = 0; i < batch; ++i) {
    b.attr_ids.push_back(
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(config.n_attrs))));
    b.length_norm.push_back(rng.UniformFloat(0.0f, 1.0f));
    b.labels.push_back(static_cast<int>(rng.UniformInt(2)));
  }
  return b;
}

TEST(ModelConfigTest, Validation) {
  ModelConfig config = SmallConfig(false);
  EXPECT_TRUE(config.Validate().ok());
  config.vocab = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig(true);
  config.n_attrs = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.use_attr_branch = false;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ModelTest, NamesFollowArchitecture) {
  ErrorDetectionModel tsb(SmallConfig(false));
  ErrorDetectionModel etsb(SmallConfig(true));
  EXPECT_EQ(tsb.name(), "TSB-RNN");
  EXPECT_EQ(etsb.name(), "ETSB-RNN");
}

TEST(ModelTest, EnrichedHasMoreWeights) {
  ErrorDetectionModel tsb(SmallConfig(false));
  ErrorDetectionModel etsb(SmallConfig(true));
  EXPECT_GT(etsb.NumWeights(), tsb.NumWeights());
  EXPECT_GT(etsb.Params().size(), tsb.Params().size());
}

class ModelForwardTest : public ::testing::TestWithParam<bool> {};

TEST_P(ModelForwardTest, LogitsShapeAndProbRange) {
  const ModelConfig config = SmallConfig(GetParam());
  ErrorDetectionModel model(config);
  const BatchInput batch = SmallBatch(config, 4, 3);

  nn::Graph g;
  nn::Graph::Var logits = model.Forward(&g, batch, /*training=*/true);
  EXPECT_EQ(g.value(logits).rows(), 4);
  EXPECT_EQ(g.value(logits).cols(), 2);

  std::vector<float> probs;
  model.PredictProbs(batch, &probs);
  ASSERT_EQ(probs.size(), 4u);
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST_P(ModelForwardTest, InferenceGraphMatchesForwardOnly) {
  // The tape-based forward in eval mode (BatchNormInfer) and the forward-
  // only Predict path must agree — they are two implementations of the
  // same network.
  const ModelConfig config = SmallConfig(GetParam());
  ErrorDetectionModel model(config);
  const BatchInput batch = SmallBatch(config, 3, 5);

  nn::Graph g;
  nn::Graph::Var logits = model.Forward(&g, batch, /*training=*/false);
  nn::Tensor graph_probs;
  nn::SoftmaxRows(g.value(logits), &graph_probs);

  std::vector<float> direct_probs;
  model.PredictProbs(batch, &direct_probs);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(graph_probs.at(i, 1), direct_probs[static_cast<size_t>(i)],
                1e-4f);
  }
}

TEST_P(ModelForwardTest, TrainingStepReducesLossOnFixedBatch) {
  const ModelConfig config = SmallConfig(GetParam());
  ErrorDetectionModel model(config);
  BatchInput batch = SmallBatch(config, 8, 7);
  // Learnable labels: label = most frequent char id parity.
  for (int i = 0; i < batch.batch; ++i) {
    batch.labels[static_cast<size_t>(i)] =
        batch.char_steps[0][static_cast<size_t>(i)] % 2;
  }

  std::vector<nn::Parameter*> params = model.Params();
  nn::RmsProp opt(0.005f);
  float first_loss = 0;
  float last_loss = 0;
  for (int it = 0; it < 60; ++it) {
    nn::Graph g;
    nn::Graph::Var logits = model.Forward(&g, batch, true);
    nn::Graph::Var loss = g.SoftmaxCrossEntropy(logits, batch.labels);
    nn::ZeroGrads(params);
    g.Backward(loss);
    opt.Step(params);
    if (it == 0) first_loss = g.value(loss).scalar();
    last_loss = g.value(loss).scalar();
  }
  EXPECT_LT(last_loss, first_loss * 0.7f);
}

INSTANTIATE_TEST_SUITE_P(Architectures, ModelForwardTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ETSB" : "TSB";
                         });

TEST(ModelTest, SnapshotRestoreRoundtrip) {
  const ModelConfig config = SmallConfig(true);
  ErrorDetectionModel model(config);
  const BatchInput batch = SmallBatch(config, 4, 9);

  const ModelSnapshot snapshot = model.Snapshot();
  std::vector<float> before;
  model.PredictProbs(batch, &before);

  // Perturb weights by training on random labels.
  std::vector<nn::Parameter*> params = model.Params();
  nn::RmsProp opt(0.05f);
  for (int it = 0; it < 5; ++it) {
    nn::Graph g;
    nn::Graph::Var logits = model.Forward(&g, batch, true);
    nn::Graph::Var loss = g.SoftmaxCrossEntropy(logits, batch.labels);
    nn::ZeroGrads(params);
    g.Backward(loss);
    opt.Step(params);
  }
  std::vector<float> perturbed;
  model.PredictProbs(batch, &perturbed);
  bool changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    if (std::fabs(before[i] - perturbed[i]) > 1e-6f) changed = true;
  }
  EXPECT_TRUE(changed);

  model.Restore(snapshot);
  std::vector<float> restored;
  model.PredictProbs(batch, &restored);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], restored[i], 1e-6f);
  }
}

TEST(ModelTest, CalibratedInferenceMatchesFullBatchTrainMode) {
  // CalibrateBatchNorm sets the running statistics to the exact dataset
  // statistics, so inference on the whole dataset must agree with a
  // training-mode forward over the whole dataset as one batch (where batch
  // stats == dataset stats).
  data::Table dirty(std::vector<std::string>{"a", "b"});
  data::Table clean(std::vector<std::string>{"a", "b"});
  Rng rng(31);
  for (int i = 0; i < 24; ++i) {
    const std::string v1 = "v" + std::to_string(i % 9);
    const std::string v2 = std::to_string(100 + 7 * i);
    ASSERT_TRUE(dirty.AppendRow({rng.Bernoulli(0.3) ? v1 + "x" : v1, v2}).ok());
    ASSERT_TRUE(clean.AppendRow({v1, v2}).ok());
  }
  auto frame = data::PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  const data::EncodedDataset ds = data::EncodeCells(*frame, chars);

  ModelConfig config = SmallConfig(true);
  config.vocab = ds.vocab;
  config.max_len = ds.max_len;
  config.n_attrs = ds.n_attrs;
  ErrorDetectionModel model(config);

  std::vector<int64_t> all_indices;
  for (int64_t i = 0; i < ds.num_cells(); ++i) all_indices.push_back(i);
  const BatchInput full_batch = MakeBatch(ds, all_indices);

  // Training-mode forward over the full dataset (batch statistics).
  nn::Graph g;
  nn::Graph::Var logits = model.Forward(&g, full_batch, /*training=*/true);
  nn::Tensor train_probs;
  nn::SoftmaxRows(g.value(logits), &train_probs);

  model.CalibrateBatchNorm(ds);
  std::vector<float> calibrated;
  model.PredictProbs(full_batch, &calibrated);
  for (int i = 0; i < full_batch.batch; ++i) {
    EXPECT_NEAR(train_probs.at(i, 1), calibrated[static_cast<size_t>(i)],
                2e-3f)
        << "cell " << i;
  }
}

TEST(ModelTest, CalibrationIsIdempotent) {
  const ModelConfig config = SmallConfig(false);
  ErrorDetectionModel model(config);
  const BatchInput batch = SmallBatch(config, 6, 17);

  // Build a tiny dataset from the batch to calibrate on.
  data::EncodedDataset ds;
  ds.max_len = config.max_len;
  ds.vocab = config.vocab;
  ds.n_attrs = config.n_attrs;
  for (int i = 0; i < batch.batch; ++i) {
    for (int t = 0; t < config.max_len; ++t) {
      ds.seqs.push_back(batch.char_steps[static_cast<size_t>(t)][static_cast<size_t>(i)]);
    }
    ds.attrs.push_back(batch.attr_ids[static_cast<size_t>(i)]);
    ds.length_norm.push_back(batch.length_norm[static_cast<size_t>(i)]);
    ds.labels.push_back(batch.labels[static_cast<size_t>(i)]);
    ds.row_ids.push_back(i);
  }

  model.CalibrateBatchNorm(ds);
  std::vector<float> first;
  model.PredictProbs(batch, &first);
  model.CalibrateBatchNorm(ds);
  std::vector<float> second;
  model.PredictProbs(batch, &second);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_FLOAT_EQ(first[i], second[i]);
  }
}

TEST(ModelTest, AblationBranchesChangeConcatWidth) {
  ModelConfig config = SmallConfig(true);
  ErrorDetectionModel full(config);
  config.use_attr_branch = false;
  ErrorDetectionModel no_attr(config);
  config.use_length_branch = false;
  ErrorDetectionModel value_only(config);
  EXPECT_GT(full.NumWeights(), no_attr.NumWeights());
  EXPECT_GT(no_attr.NumWeights(), value_only.NumWeights());
}

TEST(MakeBatchTest, ColumnMajorLayout) {
  data::Table dirty(std::vector<std::string>{"a", "b"});
  ASSERT_TRUE(dirty.AppendRow({"xy", "z"}).ok());
  ASSERT_TRUE(dirty.AppendRow({"q", ""}).ok());
  data::Table clean = dirty;
  auto frame = data::PrepareData(dirty, clean);
  ASSERT_TRUE(frame.ok());
  data::CharIndex chars = data::CharIndex::Build(*frame);
  data::EncodedDataset ds = data::EncodeCells(*frame, chars);

  const BatchInput batch = MakeBatch(ds, {0, 1, 2});
  EXPECT_EQ(batch.batch, 3);
  ASSERT_EQ(batch.char_steps.size(), static_cast<size_t>(ds.max_len));
  // Cell 0 is "xy": step 0 holds 'x' id, step 1 holds 'y' id.
  EXPECT_EQ(batch.char_steps[0][0], chars.IndexOf('x'));
  EXPECT_EQ(batch.char_steps[1][0], chars.IndexOf('y'));
  // Cell 1 is "z": step 1 is padding.
  EXPECT_EQ(batch.char_steps[0][1], chars.IndexOf('z'));
  EXPECT_EQ(batch.char_steps[1][1], 0);
  EXPECT_EQ(batch.attr_ids[1], 1);
  EXPECT_EQ(batch.attr_ids[2], 0);
}

}  // namespace
}  // namespace birnn::core
