#!/bin/bash
# Remaining harnesses with 1-core budgets (the full-protocol variants are
# one --paper-fidelity flag away; see EXPERIMENTS.md).
cd "$(dirname "$0")"
B=../build/bench
set -x
$B/bench_table5_train_time --reps 2 --epochs 35                          2>>progress.log
$B/bench_fig6_test_accuracy --datasets=hospital,flights,beers --reps 2 --epochs 40 --eval-cells 400 2>>progress.log
$B/bench_fig7_train_test    --datasets=hospital,flights,beers --reps 2 --epochs 40 --eval-cells 400 2>>progress.log
$B/bench_ablation_samplers  --datasets=beers,hospital,rayyan --reps 2 --epochs 35 2>>progress.log
$B/bench_ablation_truncation --reps 1 --epochs 35                        2>>progress.log
$B/bench_ablation_architecture --reps 1 --epochs 35                      2>>progress.log
$B/bench_ablation_cell_type --reps 1 --epochs 35                         2>>progress.log
$B/bench_repair --epochs 35                                              2>>progress.log
$B/bench_error_analysis --reps 1 --epochs 35                             2>>progress.log
$B/bench_micro_nn --benchmark_min_time=0.1                               2>>progress.log
