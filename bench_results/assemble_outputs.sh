#!/bin/bash
# Assembles the recorded deliverable files:
#   /root/repo/test_output.txt   — full ctest run
#   /root/repo/bench_output.txt  — all harness outputs (from run_all.sh,
#                                  plus bench_error_analysis appended)
set -euo pipefail
cd /root/repo

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt

{
  echo "# Benchmark sweep — produced by bench_results/run_all.sh"
  echo "# (per-harness flags recorded in the '+' trace lines of all.err;"
  echo "#  defaults: reps=3 epochs=80 ~300-row datasets; figures/ablations"
  echo "#  at reps=2; --paper-fidelity reproduces the paper's protocol)"
  echo
  cat bench_results/all.out
} > /root/repo/bench_output.txt
