#!/bin/bash
# Minimal-budget fallback for the last harnesses (used if the session's
# wall clock runs out before fast_rest.sh completes them).
cd "$(dirname "$0")"
B=../build/bench
set -x
$B/bench_ablation_samplers  --datasets=hospital,beers --reps 1 --epochs 30 2>>progress.log
$B/bench_ablation_truncation --datasets=movies --reps 1 --epochs 25 --lengths=16,64,128 2>>progress.log
$B/bench_ablation_architecture --datasets=hospital --reps 1 --epochs 30  2>>progress.log
$B/bench_ablation_cell_type --datasets=hospital --reps 1 --epochs 25     2>>progress.log
$B/bench_repair --datasets=beers,flights,tax --epochs 30                 2>>progress.log
$B/bench_error_analysis --reps 1 --epochs 30                             2>>progress.log
$B/bench_micro_nn --benchmark_min_time=0.1                               2>>progress.log
