#!/usr/bin/env python3
"""Final assembly of bench_output.txt.

The CORRECTION block was appended to all.out while bench_table5's stdout
was still buffered, so its table body landed after the block. This script
moves the correction block to the end of the file where it belongs, then
writes /root/repo/bench_output.txt with a provenance header.
"""
import io
import os

os.chdir(os.path.dirname(os.path.abspath(__file__)))

with io.open("all.out", encoding="utf-8", errors="replace") as f:
    text = f.read()

marker = "=== CORRECTION: Table 3/4 rerun for the Tax dataset ==="
start = text.find(marker)
if start >= 0:
    # The block ends with the corrected Table 4's last row (TSB-RNN line).
    tail = text[start:]
    end_token = "| TSB-RNN   | 0.69            | 0.25             | 0.69             | 0.22              |\n"
    end = tail.find(end_token)
    if end >= 0:
        block = tail[: end + len(end_token)]
        text = text[:start] + tail[end + len(end_token):]
        text = text.rstrip("\n") + "\n\n" + block
    else:
        print("warning: correction end token not found; leaving in place")

header = """# Benchmark sweep output — one harness per paper table/figure.
# Produced by bench_results/run_all.sh (Tables 2-4: reps=3, epochs=80,
# ~300-row datasets) and bench_results/fast_rest.sh (Table 5, Figures 6/7,
# ablations: reps<=2, epochs 35-40 — time-boxed for a 1-core machine).
# Every harness accepts --paper-fidelity for the paper's full protocol
# (reps=10, epochs=120, unscaled datasets). See EXPERIMENTS.md.

"""

with io.open("/root/repo/bench_output.txt", "w", encoding="utf-8") as f:
    f.write(header + text)
print("bench_output.txt written,", len(text.splitlines()), "lines")
