#!/bin/bash
# Full evaluation sweep. Flags chosen for a 1-core machine; see
# EXPERIMENTS.md for the configuration rationale. --paper-fidelity
# reproduces the paper's exact protocol when more hardware is available.
cd "$(dirname "$0")"
B=../build/bench
set -x
$B/bench_table2_datasets                                       2>progress.log
$B/bench_table3_comparison                                     2>>progress.log
$B/bench_table4_aggregate                                      2>>progress.log
$B/bench_table5_train_time    --reps 2 --epochs 60             2>>progress.log
$B/bench_fig6_test_accuracy   --reps 2 --epochs 60 --eval-cells 800  2>>progress.log
$B/bench_fig7_train_test      --reps 2 --epochs 60 --eval-cells 800  2>>progress.log
$B/bench_ablation_samplers    --reps 2                         2>>progress.log
$B/bench_ablation_truncation  --reps 2                         2>>progress.log
$B/bench_ablation_architecture --reps 2                        2>>progress.log
$B/bench_ablation_cell_type   --reps 2 --epochs 40             2>>progress.log
$B/bench_repair               --epochs 60                      2>>progress.log
$B/bench_micro_nn --benchmark_min_time=0.2                    2>>progress.log
