// Ablation for §4.2/§5.2: the paper states "we reached the best results
// with our novel Algorithm 3 (DiverSet)". This bench compares the three
// trainset-selection algorithms — RandomSet (Alg. 1), RahaSet (Alg. 2)
// and DiverSet (Alg. 3) — feeding the same ETSB-RNN on every dataset.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "eval/report.h"
#include "util/stats.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_ablation_samplers");

  std::cout << "=== Ablation: trainset-selection algorithms (ETSB-RNN, "
            << config.n_label_tuples << " tuples, " << config.reps
            << " reps) ===\n\n";

  const std::vector<std::string> samplers{"randomset", "rahaset", "diverset"};
  eval::TableWriter writer(
      {"Dataset", "RandomSet F1", "S.D.", "RahaSet F1", "S.D.",
       "DiverSet F1", "S.D."});
  std::map<std::string, std::vector<double>> f1_by_sampler;
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[samplers] " << dataset << "...\n";
    std::vector<std::string> row{dataset};
    for (const std::string& sampler : samplers) {
      const eval::RepeatedResult result = eval::RunRepeatedDetector(
          pair, MakeRunnerOptions(config, "etsb", sampler));
      row.push_back(eval::Fmt2(result.f1.mean));
      row.push_back(eval::Fmt2(result.f1.stddev));
      f1_by_sampler[sampler].push_back(result.f1.mean);
    }
    writer.AddRow(std::move(row));
  }
  std::vector<std::string> avg_row{"AVG"};
  for (const std::string& sampler : samplers) {
    avg_row.push_back(eval::Fmt2(Mean(f1_by_sampler[sampler])));
    avg_row.push_back(eval::Fmt2(SampleStdDev(f1_by_sampler[sampler])));
  }
  writer.AddRow(std::move(avg_row));
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
