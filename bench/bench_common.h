#ifndef BIRNN_BENCH_BENCH_COMMON_H_
#define BIRNN_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "eval/runner.h"
#include "util/flags.h"

namespace birnn::bench {

/// Settings shared by every experiment binary. Defaults are sized for a
/// 1-core machine; `--paper-fidelity` switches to the paper's full setup
/// (10 repetitions, 120 epochs, unscaled datasets). EXPERIMENTS.md records
/// which configuration produced the committed outputs.
struct BenchConfig {
  int reps = 3;
  int epochs = 80;
  int n_label_tuples = 20;
  double scale = 0.0;  ///< 0 = per-dataset default targeting ~300 rows.
  uint64_t seed = 1000;
  bool paper_fidelity = false;
  std::vector<std::string> datasets;  ///< empty = all six.
};

/// Registers the shared flags on `flags`.
void AddCommonFlags(FlagSet* flags);

/// Reads the shared flags back; exits with usage on --help or parse error.
BenchConfig ParseCommonFlags(FlagSet* flags, int argc, char** argv,
                             const char* program);

/// Default generation scale for a dataset so benches finish on one core
/// (~300 rows each); 1.0 under paper fidelity.
double DefaultScale(const std::string& dataset, const BenchConfig& config);

/// Generates one dataset pair under the bench configuration.
datagen::DatasetPair MakePair(const std::string& dataset,
                              const BenchConfig& config);

/// The dataset list this run covers (config.datasets or all six).
std::vector<std::string> DatasetList(const BenchConfig& config);

/// Builds detector-based runner options with the bench configuration
/// applied (model "tsb"/"etsb", sampler name).
eval::RunnerOptions MakeRunnerOptions(const BenchConfig& config,
                                      const std::string& model,
                                      const std::string& sampler = "diverset");

}  // namespace birnn::bench

#endif  // BIRNN_BENCH_BENCH_COMMON_H_
