#ifndef BIRNN_BENCH_BENCH_COMMON_H_
#define BIRNN_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "eval/runner.h"
#include "eval/scheduler.h"
#include "util/flags.h"

namespace birnn::bench {

/// Settings shared by every experiment binary. Defaults are sized for a
/// 1-core machine; `--paper-fidelity` switches to the paper's full setup
/// (10 repetitions, 120 epochs, unscaled datasets). EXPERIMENTS.md records
/// which configuration produced the committed outputs.
struct BenchConfig {
  int reps = 3;
  int epochs = 80;
  int n_label_tuples = 20;
  double scale = 0.0;  ///< 0 = per-dataset default targeting ~300 rows.
  uint64_t seed = 1000;
  bool paper_fidelity = false;
  std::vector<std::string> datasets;  ///< empty = all six.

  /// Outer experiment-scheduler workers: -1 = one per hardware thread
  /// (default), 0 = serial legacy loop. Aggregates are bit-identical for
  /// every value (DESIGN.md §8).
  int harness_threads = -1;
  /// Artifact cache for (dataset, system, repetition) results; warm
  /// re-runs skip completed cells. `--cache=false` disables.
  bool cache_enabled = true;
  /// Cache directory; empty = $BIRNN_CACHE_DIR, then ".birnn-cache".
  std::string cache_dir;
  /// Machine-readable output next to the text tables; empty = skip.
  std::string json_path;
  /// Chrome trace_event JSON of the run's obs spans; empty = skip.
  std::string trace_path;
  /// Prometheus-style text snapshot of the obs registry; empty = skip.
  std::string metrics_path;
};

/// Registers the shared flags on `flags`. `default_json` is the bench's
/// JSON output path (empty = bench has no JSON output).
void AddCommonFlags(FlagSet* flags, const std::string& default_json = "");

/// Reads the shared flags back; exits with usage on --help or parse error.
BenchConfig ParseCommonFlags(FlagSet* flags, int argc, char** argv,
                             const char* program);

/// Default generation scale for a dataset so benches finish on one core
/// (~300 rows each); 1.0 under paper fidelity.
double DefaultScale(const std::string& dataset, const BenchConfig& config);

/// Generates one dataset pair under the bench configuration.
datagen::DatasetPair MakePair(const std::string& dataset,
                              const BenchConfig& config);

/// The dataset list this run covers (config.datasets or all six).
std::vector<std::string> DatasetList(const BenchConfig& config);

/// Generates every pair of DatasetList(config), in order. Benches submit
/// scheduler jobs against references into the returned vector — it is
/// fully built here precisely so those references stay stable.
std::vector<datagen::DatasetPair> MakeAllPairs(const BenchConfig& config);

/// Builds detector-based runner options with the bench configuration
/// applied (model "tsb"/"etsb", sampler name).
eval::RunnerOptions MakeRunnerOptions(const BenchConfig& config,
                                      const std::string& model,
                                      const std::string& sampler = "diverset");

/// The bench's artifact cache per config (null when disabled).
std::unique_ptr<eval::ArtifactCache> MakeCache(const BenchConfig& config);

/// Scheduler options per config (`cache` borrowed, may be null).
eval::SchedulerOptions MakeSchedulerOptions(const BenchConfig& config,
                                            eval::ArtifactCache* cache);

/// One-line harness accounting ("6 jobs, 4 computed, 2 cached, 8 workers,
/// 12.3 s wall") printed by every scheduled bench.
void PrintSchedulerSummary(const eval::Scheduler& scheduler,
                           std::ostream& out);

/// Epoch with the lowest train loss of one repetition's history (the
/// paper's checkpoint-selection rule; Fig. 6/7 markers).
int BestEpoch(const std::vector<core::EpochStats>& history);

/// system -> dataset -> per-repetition F1 values; the shape both Table 4
/// paths aggregate.
using F1Map = std::map<std::string, std::map<std::string, std::vector<double>>>;

/// Appends `result.runs` F1 values under (result.system, result.dataset).
void AddRunsToF1Map(F1Map* map, const eval::RepeatedResult& result);

/// Renders the paper's Table 4 from an F1Map: average F1 and S.D. across
/// datasets, without and with Flights, one row per system.
void PrintAggregateF1Table(const F1Map& map, std::ostream& out);

/// The Table 3 comparison protocol: submits Raha / Rotom / Rotom+SSL
/// (unless `skip_baselines`) and TSB-RNN / ETSB-RNN on `pair`. Returned
/// pairs are (system name, experiment id) in submission order.
std::vector<std::pair<std::string, eval::Scheduler::ExperimentId>>
SubmitComparison(eval::Scheduler* scheduler, const datagen::DatasetPair& pair,
                 const BenchConfig& config, int rotom_cells,
                 bool skip_baselines);

/// Minimal streaming JSON writer (comma/escape handling only — no
/// formatting options). Used by the benches' machine-readable outputs.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);

 private:
  void BeforeValue();

  std::ostream& out_;
  /// One entry per open container: number of elements written so far;
  /// -1 flags "a key was just written, next value needs no comma".
  std::vector<int64_t> counts_;
};

/// Writes a RepeatedResult as a JSON object (summary stats, timing, raw
/// per-repetition metrics). The writer must be positioned for a value.
void WriteResultJson(JsonWriter* json, const eval::RepeatedResult& result);

/// Writes the current obs registry snapshot as one JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,p50,p95,
/// p99,max}}}. The writer must be positioned for a value.
void WriteObsJson(JsonWriter* json);

/// Honors --trace / --metrics: dumps the Chrome trace and the text
/// exposition of everything recorded so far to the configured paths
/// (each skipped when empty). Prints where the artifacts went.
void WriteObsArtifacts(const BenchConfig& config);

}  // namespace birnn::bench

#endif  // BIRNN_BENCH_BENCH_COMMON_H_
