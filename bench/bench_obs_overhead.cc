// Overhead gate for the obs subsystem: runs the PR 1 training workload
// (Trainer::Fit on the hospital trainset) and the PR 2 inference workload
// (InferenceEngine whole-table sweep) with instrumentation enabled and
// disabled (obs::SetEnabled), interleaving the two arms A/B/A/B per rep so
// thermal / frequency drift hits both sides equally. Reports min-of-reps
// for each arm and exits nonzero when the enabled/disabled ratio of either
// workload exceeds --budget-pct (default 2%). CI runs this as a smoke job;
// see .github/workflows/ci.yml.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/inference.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "eval/report.h"
#include "obs/registry.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

// One workload's A/B accounting: best (minimum) wall-clock per arm.
struct ArmTimes {
  double enabled_sec = std::numeric_limits<double>::infinity();
  double disabled_sec = std::numeric_limits<double>::infinity();

  double overhead_pct() const {
    if (disabled_sec <= 0.0) return 0.0;
    return (enabled_sec / disabled_sec - 1.0) * 100.0;
  }
};

// Everything both workloads need, prepared once so the measured region is
// purely Fit / PredictProbs.
struct Workloads {
  data::EncodedDataset all;
  data::EncodedDataset train;
  data::EncodedDataset test;
  core::ModelConfig model_config;
  int epochs = 0;
  int eval_batch = 0;
  uint64_t seed = 0;
};

double RunTrainOnce(const Workloads& w) {
  core::ErrorDetectionModel model(w.model_config);
  core::TrainerOptions options;
  options.epochs = w.epochs;
  options.seed = w.seed;
  options.train_threads = 0;  // inline: no scheduling noise in the timing
  core::Trainer trainer(options);
  const core::TrainHistory history = trainer.Fit(&model, w.train, &w.test);
  return history.train_seconds;
}

double RunInferenceOnce(const Workloads& w,
                        const core::ErrorDetectionModel& model) {
  core::InferenceOptions options;
  options.eval_batch = w.eval_batch;
  core::InferenceEngine engine(model, options);
  std::vector<float> probs;
  engine.PredictProbs(w.all, {}, &probs);
  return engine.stats().seconds;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("dataset", "hospital", "dataset generator to measure on");
  flags.AddInt("epochs", 10, "training epochs per measurement");
  flags.AddInt("train-rows", 24, "labeled rows in the trainset");
  flags.AddInt("eval-batch", 256, "cells per inference batch");
  flags.AddInt("reps", 5, "interleaved A/B repetitions per workload");
  flags.AddDouble("budget-pct", 2.0,
                  "maximum tolerated enabled-vs-disabled overhead [%]");
  flags.AddDouble("scale", 0.0, "dataset scale (0 = bench default)");
  flags.AddInt("seed", 1000, "generation / training seed");
  flags.AddString("json", "BENCH_obs_overhead.json",
                  "output JSON path (empty = skip)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::cerr << flags.Usage("bench_obs_overhead");
    return st.ok() ? 0 : 1;
  }

  BenchConfig config;
  config.scale = flags.GetDouble("scale");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string dataset = flags.GetString("dataset");
  const int reps = std::max(1, flags.GetInt("reps"));
  const double budget_pct = flags.GetDouble("budget-pct");

  const datagen::DatasetPair pair = MakePair(dataset, config);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  if (!frame.ok()) {
    std::cerr << "PrepareData failed: " << frame.status().message() << "\n";
    return 1;
  }
  const data::CharIndex chars = data::CharIndex::Build(*frame);

  Workloads w;
  w.all = data::EncodeCells(*frame, chars);
  std::vector<int64_t> train_ids;
  for (int64_t i = 0; i < flags.GetInt("train-rows"); ++i) {
    train_ids.push_back(i);
  }
  data::SplitByRowIds(w.all, train_ids, &w.train, &w.test);
  w.model_config.vocab = w.all.vocab;
  w.model_config.max_len = w.all.max_len;
  w.model_config.n_attrs = w.all.n_attrs;
  w.model_config.enriched = true;
  w.model_config.seed = config.seed;
  w.epochs = flags.GetInt("epochs");
  w.eval_batch = flags.GetInt("eval-batch");
  w.seed = config.seed;

  // A fixed calibrated model shared by every inference measurement, so the
  // arms run the exact same forward passes.
  core::ErrorDetectionModel infer_model(w.model_config);
  infer_model.CalibrateBatchNorm(w.all, w.eval_batch);

  std::cout << "=== obs overhead gate (" << dataset << ", "
            << w.train.num_cells() << " train cells x " << w.epochs
            << " epochs, " << w.all.num_cells() << " sweep cells, " << reps
            << " reps, budget " << FormatFixed(budget_pct, 1) << "%) ===\n";
#if !BIRNN_OBS_ENABLED
  std::cout << "NOTE: compiled with BIRNN_OBS=OFF — every macro is a no-op, "
               "both arms run identical code.\n";
#endif

  const bool was_enabled = obs::Enabled();
  ArmTimes train_times;
  ArmTimes infer_times;
  for (int rep = 0; rep < reps; ++rep) {
    // Warm-up rep 0 primes caches and the leaky metric statics; its
    // timings still count (min-of-reps discards slow outliers anyway).
    obs::SetEnabled(true);
    train_times.enabled_sec =
        std::min(train_times.enabled_sec, RunTrainOnce(w));
    obs::SetEnabled(false);
    train_times.disabled_sec =
        std::min(train_times.disabled_sec, RunTrainOnce(w));

    obs::SetEnabled(true);
    infer_times.enabled_sec =
        std::min(infer_times.enabled_sec, RunInferenceOnce(w, infer_model));
    obs::SetEnabled(false);
    infer_times.disabled_sec =
        std::min(infer_times.disabled_sec, RunInferenceOnce(w, infer_model));

    std::cerr << "[obs-overhead] rep " << (rep + 1) << "/" << reps
              << " train on/off=" << FormatFixed(train_times.enabled_sec, 3)
              << "/" << FormatFixed(train_times.disabled_sec, 3)
              << "s infer on/off=" << FormatFixed(infer_times.enabled_sec, 3)
              << "/" << FormatFixed(infer_times.disabled_sec, 3) << "s\n";
  }
  obs::SetEnabled(was_enabled);

  eval::TableWriter writer(
      {"Workload", "Enabled [s]", "Disabled [s]", "Overhead", "Budget"});
  const auto verdict = [budget_pct](const ArmTimes& t) {
    return t.overhead_pct() <= budget_pct ? "ok" : "OVER";
  };
  writer.AddRow({"train (PR 1)", FormatFixed(train_times.enabled_sec, 3),
                 FormatFixed(train_times.disabled_sec, 3),
                 FormatFixed(train_times.overhead_pct(), 2) + "%",
                 verdict(train_times)});
  writer.AddRow({"inference (PR 2)", FormatFixed(infer_times.enabled_sec, 3),
                 FormatFixed(infer_times.disabled_sec, 3),
                 FormatFixed(infer_times.overhead_pct(), 2) + "%",
                 verdict(infer_times)});
  writer.Print(std::cout);

  const bool ok = train_times.overhead_pct() <= budget_pct &&
                  infer_times.overhead_pct() <= budget_pct;
  std::cout << "\nObs overhead within " << FormatFixed(budget_pct, 1)
            << "% budget: " << (ok ? "yes" : "NO") << "\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("dataset").String(dataset);
    json.Key("obs_compiled_in").Bool(BIRNN_OBS_ENABLED != 0);
    json.Key("epochs").Int(w.epochs);
    json.Key("train_cells").Int(w.train.num_cells());
    json.Key("sweep_cells").Int(w.all.num_cells());
    json.Key("reps").Int(reps);
    json.Key("budget_pct").Number(budget_pct);
    json.Key("train_enabled_seconds").Number(train_times.enabled_sec);
    json.Key("train_disabled_seconds").Number(train_times.disabled_sec);
    json.Key("train_overhead_pct").Number(train_times.overhead_pct());
    json.Key("inference_enabled_seconds").Number(infer_times.enabled_sec);
    json.Key("inference_disabled_seconds").Number(infer_times.disabled_sec);
    json.Key("inference_overhead_pct").Number(infer_times.overhead_pct());
    json.Key("within_budget").Bool(ok);
    json.EndObject();
    out << "\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
