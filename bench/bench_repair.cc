// Extension bench (paper §6 future work): couple the ETSB-RNN detector
// with the Baran/HoloClean-style repair engines and measure, per dataset,
// repair precision/recall and the fraction of dirty cells fully cleaned —
// both with the detector's mask and with an oracle mask (isolating repair
// quality from detection quality).

#include <iostream>

#include "bench_common.h"
#include "core/detector.h"
#include "eval/report.h"
#include "repair/corrector.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

std::vector<uint8_t> OracleMask(const datagen::DatasetPair& pair) {
  std::vector<uint8_t> mask(
      static_cast<size_t>(pair.dirty.num_rows()) * pair.dirty.num_columns(),
      0);
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < pair.dirty.num_columns(); ++c) {
      if (pair.dirty.cell(r, c) != pair.clean.cell(r, c)) {
        mask[static_cast<size_t>(r) * pair.dirty.num_columns() + c] = 1;
      }
    }
  }
  return mask;
}

double CleanedFraction(const datagen::DatasetPair& pair,
                       const data::Table& repaired) {
  int64_t before = 0;
  int64_t fixed = 0;
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < pair.dirty.num_columns(); ++c) {
      if (pair.dirty.cell(r, c) == pair.clean.cell(r, c)) continue;
      ++before;
      if (repaired.cell(r, c) == pair.clean.cell(r, c)) ++fixed;
    }
  }
  return before == 0 ? 0.0
                     : static_cast<double>(fixed) /
                           static_cast<double>(before);
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_repair");

  std::cout << "=== Extension: detect-and-repair (§6 future work) ===\n\n";
  eval::TableWriter writer({"Dataset", "Mask", "Suggestions", "Repair P",
                            "Repair R", "Cells cleaned"});
  repair::Repairer repairer;
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[repair] " << dataset << "...\n";

    // Oracle mask: repair ceiling.
    {
      const auto mask = OracleMask(pair);
      const auto suggestions = repairer.Repair(pair.dirty, mask);
      const auto metrics =
          repair::EvaluateRepairs(pair.dirty, pair.clean, suggestions);
      const data::Table repaired = repairer.Apply(pair.dirty, suggestions);
      writer.AddRow({dataset, "oracle", std::to_string(suggestions.size()),
                     eval::Fmt2(metrics.Precision()),
                     eval::Fmt2(metrics.Recall()),
                     eval::Fmt2(CleanedFraction(pair, repaired))});
    }
    // Detector mask: the end-to-end pipeline.
    {
      core::DetectorOptions options;
      options.n_label_tuples = config.n_label_tuples;
      options.trainer.epochs = config.epochs;
      options.seed = config.seed;
      core::ErrorDetector detector(options);
      auto report = detector.Run(pair.dirty, pair.clean);
      if (!report.ok()) {
        std::cerr << report.status().ToString() << "\n";
        continue;
      }
      const auto suggestions =
          repairer.Repair(pair.dirty, report->predicted);
      const auto metrics =
          repair::EvaluateRepairs(pair.dirty, pair.clean, suggestions);
      const data::Table repaired = repairer.Apply(pair.dirty, suggestions);
      writer.AddRow({dataset, "ETSB-RNN", std::to_string(suggestions.size()),
                     eval::Fmt2(metrics.Precision()),
                     eval::Fmt2(metrics.Recall()),
                     eval::Fmt2(CleanedFraction(pair, repaired))});
    }
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
