#!/usr/bin/env bash
# Measures whole-table inference throughput (naive vs memoized vs
# memoized+bucketed sweeps) on all six generators and writes
# BENCH_inference.json next to the repo root (or $1).
#
#   bench/run_inference_throughput.sh [output.json] [extra bench flags...]
#
# Assumes the project is configured in ./build (cmake -B build -S .).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out="${1:-$repo_root/BENCH_inference.json}"
shift || true

# Inference-only sweeps are cheap enough to run at the paper's Table 2 row
# counts (--scale=1); pass an explicit --scale to override.
cmake --build "$build_dir" --target bench_inference_throughput -j
"$build_dir/bench/bench_inference_throughput" --scale=1 --json="$out" "$@"
echo "inference results: $out"
