// Harness throughput: wall-clock of the Table-3-style experiment grid
// (TSB-RNN + ETSB-RNN x datasets x repetitions) under three regimes:
//   serial    — the legacy loop (harness_threads=0, no cache),
//   scheduled — eval::Scheduler fan-out over the cores, cold cache,
//   warm      — the same scheduled grid again; every cell should come out
//               of the artifact cache with zero retraining.
// The aggregated metrics of all three regimes must be bit-identical
// (DESIGN.md §8) — the bench verifies this and refuses to report a
// speedup otherwise. Writes BENCH_harness.json (see run_harness_throughput
// target in CI).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

struct GridRun {
  std::vector<eval::RepeatedResult> results;
  eval::SchedulerStats stats;
};

GridRun RunGrid(const std::vector<datagen::DatasetPair>& pairs,
                const BenchConfig& config, int threads,
                eval::ArtifactCache* cache) {
  eval::SchedulerOptions options;
  options.threads = threads;
  options.cache = cache;
  eval::Scheduler scheduler(options);
  std::vector<eval::Scheduler::ExperimentId> ids;
  for (const datagen::DatasetPair& pair : pairs) {
    ids.push_back(
        scheduler.SubmitDetector(pair, MakeRunnerOptions(config, "tsb")));
    ids.push_back(
        scheduler.SubmitDetector(pair, MakeRunnerOptions(config, "etsb")));
  }
  scheduler.RunAll();
  GridRun run;
  for (const eval::Scheduler::ExperimentId id : ids) {
    run.results.push_back(scheduler.Take(id));
  }
  run.stats = scheduler.stats();
  return run;
}

// Bit-exact equality of the aggregates two regimes produced.
bool SameMetrics(const std::vector<eval::RepeatedResult>& a,
                 const std::vector<eval::RepeatedResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].runs.size() != b[i].runs.size()) return false;
    if (a[i].precision.mean != b[i].precision.mean ||
        a[i].recall.mean != b[i].recall.mean ||
        a[i].f1.mean != b[i].f1.mean || a[i].f1.stddev != b[i].f1.stddev) {
      return false;
    }
    for (size_t r = 0; r < a[i].runs.size(); ++r) {
      if (a[i].runs[r].precision != b[i].runs[r].precision ||
          a[i].runs[r].recall != b[i].runs[r].recall ||
          a[i].runs[r].f1 != b[i].runs[r].f1) {
        return false;
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_harness.json");
  flags.AddBool("skip-serial", false,
                "skip the serial reference run (no speedup reported)");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_harness_throughput");
  const bool skip_serial = flags.GetBool("skip-serial");

  // This bench owns its cache directory so "cold" is actually cold.
  const std::string cache_dir = config.cache_dir.empty()
                                    ? std::string(".birnn-cache-harness-bench")
                                    : config.cache_dir;
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);

  std::cout << "=== Harness throughput: serial vs scheduled vs warm cache ("
            << config.reps << " reps, " << config.epochs << " epochs) ===\n";

  const std::vector<datagen::DatasetPair> pairs = MakeAllPairs(config);

  GridRun serial;
  if (!skip_serial) {
    std::cerr << "[harness] serial reference...\n";
    serial = RunGrid(pairs, config, /*threads=*/0, /*cache=*/nullptr);
  }

  std::cerr << "[harness] scheduled, cold cache...\n";
  eval::ArtifactCache cache(cache_dir);
  const GridRun cold =
      RunGrid(pairs, config, config.harness_threads, &cache);

  std::cerr << "[harness] scheduled, warm cache...\n";
  eval::ArtifactCache warm_cache(cache_dir);
  const GridRun warm =
      RunGrid(pairs, config, config.harness_threads, &warm_cache);

  const bool serial_identical =
      skip_serial || SameMetrics(serial.results, cold.results);
  const bool warm_identical = SameMetrics(cold.results, warm.results);
  const double speedup = (!skip_serial && cold.stats.wall_seconds > 0)
                             ? serial.stats.wall_seconds /
                                   cold.stats.wall_seconds
                             : 0.0;

  eval::TableWriter writer(
      {"Regime", "Wall [s]", "Computed", "Cached", "Speedup"});
  if (!skip_serial) {
    writer.AddRow({"serial", FormatFixed(serial.stats.wall_seconds, 2),
                   std::to_string(serial.stats.computed),
                   std::to_string(serial.stats.cache_hits), "1.00"});
  }
  writer.AddRow({"scheduled (cold)", FormatFixed(cold.stats.wall_seconds, 2),
                 std::to_string(cold.stats.computed),
                 std::to_string(cold.stats.cache_hits),
                 skip_serial ? "-" : FormatFixed(speedup, 2)});
  writer.AddRow({"scheduled (warm)", FormatFixed(warm.stats.wall_seconds, 2),
                 std::to_string(warm.stats.computed),
                 std::to_string(warm.stats.cache_hits),
                 cold.stats.wall_seconds > 0 && warm.stats.wall_seconds > 0
                     ? FormatFixed(cold.stats.wall_seconds /
                                       warm.stats.wall_seconds,
                                   2)
                     : "-"});
  writer.Print(std::cout);

  std::cout << "\nAggregates bit-identical: serial-vs-cold "
            << (serial_identical ? "yes" : "NO") << ", cold-vs-warm "
            << (warm_identical ? "yes" : "NO") << "\n";
  std::cout << "Warm retraining jobs: " << warm.stats.computed
            << " (expected 0)\n";
  if (!serial_identical || !warm_identical) {
    std::cout << "ERROR: regimes disagree — speedups invalid\n";
  }

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("reps").Int(config.reps);
    json.Key("epochs").Int(config.epochs);
    json.Key("jobs").Int(cold.stats.jobs);
    json.Key("outer_threads").Int(cold.stats.outer_threads);
    json.Key("inner_threads").Int(cold.stats.inner_threads);
    if (!skip_serial) {
      json.Key("serial_seconds").Number(serial.stats.wall_seconds);
    }
    json.Key("cold_seconds").Number(cold.stats.wall_seconds);
    json.Key("warm_seconds").Number(warm.stats.wall_seconds);
    json.Key("cold_speedup").Number(speedup);
    json.Key("warm_computed").Int(warm.stats.computed);
    json.Key("warm_cache_hits").Int(warm.stats.cache_hits);
    json.Key("serial_identical").Bool(serial_identical);
    json.Key("warm_identical").Bool(warm_identical);
    json.Key("results").BeginArray();
    for (const eval::RepeatedResult& result : cold.results) {
      WriteResultJson(&json, result);
    }
    json.EndArray();
    json.Key("obs");
    WriteObsJson(&json);
    json.EndObject();
    out << "\n";
    std::cout << "JSON written to " << config.json_path << "\n";
  }
  WriteObsArtifacts(config);
  return (serial_identical && warm_identical && warm.stats.computed == 0)
             ? 0
             : 1;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
