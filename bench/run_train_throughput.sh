#!/usr/bin/env bash
# Measures full-Fit training throughput at 0/1/2/4/8 worker threads and
# writes BENCH_train_throughput.json next to the repo root (or $1).
#
#   bench/run_train_throughput.sh [output.json] [extra bench flags...]
#
# Assumes the project is configured in ./build (cmake -B build -S .).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out="${1:-$repo_root/BENCH_train_throughput.json}"
shift || true

cmake --build "$build_dir" --target bench_train_throughput -j
"$build_dir/bench/bench_train_throughput" --json="$out" "$@"
echo "throughput results: $out"
