// Ablation for the §2 claim: "Compared to LSTM or GRU, RNNs are less
// complex and therefore do not need as much time for training." Swaps the
// recurrent cell family in both architecture branches and reports F1,
// weight count, and training time.

#include <iostream>

#include "bench_common.h"
#include "core/model.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_ablation_cell_type");
  if (config.datasets.empty()) config.datasets = {"hospital", "beers"};

  std::cout << "=== Ablation: recurrent cell family (ETSB architecture, "
            << config.reps << " reps, " << config.epochs << " epochs) ===\n\n";

  eval::TableWriter writer({"Dataset", "Cell", "Weights", "F1", "F1 S.D.",
                            "train time [s]", "vs rnn"});
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[cell_type] " << dataset << "...\n";
    double rnn_time = 0.0;
    for (const char* cell : {"rnn", "gru", "lstm"}) {
      eval::RunnerOptions options = MakeRunnerOptions(config, "etsb");
      options.detector.cell_type = cell;
      const eval::RepeatedResult result =
          eval::RunRepeatedDetector(pair, options);
      if (std::string(cell) == "rnn") rnn_time = result.train_seconds.mean;
      // Weight count from a throwaway model with this dataset's dims.
      core::ModelConfig model_config =
          core::BuildModelConfig(options.detector, 80, 32,
                                 pair.dirty.num_columns());
      core::ErrorDetectionModel probe(model_config);
      writer.AddRow(
          {dataset, cell, std::to_string(probe.NumWeights()),
           eval::Fmt2(result.f1.mean), eval::Fmt2(result.f1.stddev),
           FormatFixed(result.train_seconds.mean, 2),
           rnn_time > 0
               ? FormatFixed(result.train_seconds.mean / rnn_time, 2) + "x"
               : "-"});
    }
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
