// Regenerates the paper's Figure 6: average test accuracy per training
// epoch (with 95% confidence intervals) for TSB-RNN and ETSB-RNN on each
// dataset, plus the epochs the best-train-loss checkpoint selected per
// repetition (the red dots / blue triangles of the figure).
//
// Output is plain epoch/mean/ci columns per (dataset, model) series —
// directly plottable with gnuplot/matplotlib — plus the same data as
// JSON. All 2 x |datasets| series run through one eval::Scheduler.

#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

void PrintSeries(const eval::RepeatedResult& result) {
  eval::PrintCurve(
      "Fig6 " + result.dataset + " " + result.system + " test-accuracy",
      eval::AverageTestAccuracyCurve(result), std::cout);
  std::cout << "# selected epochs (best train loss per repetition): ";
  for (size_t rep = 0; rep < result.histories.size(); ++rep) {
    const int best = BestEpoch(result.histories[rep]);
    std::cout << (rep > 0 ? ", " : "") << best << " (acc="
              << FormatFixed(result.histories[rep][static_cast<size_t>(best)]
                                 .test_accuracy,
                             3)
              << ")";
  }
  std::cout << "\n\n";
}

void WriteSeriesJson(JsonWriter* json, const eval::RepeatedResult& result) {
  json->BeginObject();
  json->Key("dataset").String(result.dataset);
  json->Key("system").String(result.system);
  json->Key("test_accuracy").BeginArray();
  for (const eval::CurvePoint& pt : eval::AverageTestAccuracyCurve(result)) {
    json->BeginObject();
    json->Key("epoch").Int(pt.epoch);
    json->Key("mean").Number(pt.mean);
    json->Key("ci95").Number(pt.ci95);
    json->EndObject();
  }
  json->EndArray();
  json->Key("selected_epochs").BeginArray();
  for (const auto& history : result.histories) {
    const int best = BestEpoch(history);
    json->BeginObject();
    json->Key("epoch").Int(best);
    json->Key("test_accuracy")
        .Number(history[static_cast<size_t>(best)].test_accuracy);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "fig6_test_accuracy.json");
  flags.AddInt("eval-cells", 1500,
               "test cells sampled for the per-epoch accuracy sweep");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_fig6_test_accuracy");

  std::cout << "=== Figure 6: average test-accuracy during training "
            << "(" << config.reps << " repetitions, CI95) ===\n\n";

  const std::vector<datagen::DatasetPair> pairs = MakeAllPairs(config);
  std::unique_ptr<eval::ArtifactCache> cache = MakeCache(config);
  eval::Scheduler scheduler(MakeSchedulerOptions(config, cache.get()));
  std::vector<eval::Scheduler::ExperimentId> ids;
  for (const datagen::DatasetPair& pair : pairs) {
    for (const char* model : {"tsb", "etsb"}) {
      eval::RunnerOptions options = MakeRunnerOptions(config, model);
      options.detector.trainer.track_test_accuracy = true;
      options.detector.trainer.test_eval_max_cells =
          flags.GetInt("eval-cells");
      ids.push_back(scheduler.SubmitDetector(pair, options));
    }
  }
  scheduler.RunAll();

  std::vector<eval::RepeatedResult> results;
  results.reserve(ids.size());
  for (const eval::Scheduler::ExperimentId id : ids) {
    results.push_back(scheduler.Take(id));
    PrintSeries(results.back());
  }
  PrintSchedulerSummary(scheduler, std::cout);

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("figure").String("fig6");
    json.Key("series").BeginArray();
    for (const eval::RepeatedResult& result : results) {
      WriteSeriesJson(&json, result);
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "JSON written to " << config.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
