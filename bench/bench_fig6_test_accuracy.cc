// Regenerates the paper's Figure 6: average test accuracy per training
// epoch (with 95% confidence intervals) for TSB-RNN and ETSB-RNN on each
// dataset, plus the epochs the best-train-loss checkpoint selected per
// repetition (the red dots / blue triangles of the figure).
//
// Output is plain epoch/mean/ci columns per (dataset, model) series —
// directly plottable with gnuplot/matplotlib.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

/// Best (lowest train loss) epoch of one repetition's history.
int BestEpoch(const std::vector<core::EpochStats>& history) {
  int best = 0;
  for (size_t e = 1; e < history.size(); ++e) {
    if (history[e].train_loss < history[static_cast<size_t>(best)].train_loss) {
      best = static_cast<int>(e);
    }
  }
  return best;
}

void PrintSeries(const std::string& dataset, const std::string& model,
                 const eval::RepeatedResult& result) {
  eval::PrintCurve("Fig6 " + dataset + " " + model + " test-accuracy",
                   eval::AverageTestAccuracyCurve(result), std::cout);
  std::cout << "# selected epochs (best train loss per repetition): ";
  for (size_t rep = 0; rep < result.histories.size(); ++rep) {
    const int best = BestEpoch(result.histories[rep]);
    std::cout << (rep > 0 ? ", " : "") << best << " (acc="
              << FormatFixed(result.histories[rep][static_cast<size_t>(best)]
                                 .test_accuracy,
                             3)
              << ")";
  }
  std::cout << "\n\n";
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  flags.AddInt("eval-cells", 1500,
               "test cells sampled for the per-epoch accuracy sweep");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_fig6_test_accuracy");

  std::cout << "=== Figure 6: average test-accuracy during training "
            << "(" << config.reps << " repetitions, CI95) ===\n\n";

  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[fig6] " << dataset << "...\n";
    for (const char* model : {"tsb", "etsb"}) {
      eval::RunnerOptions options = MakeRunnerOptions(config, model);
      options.detector.trainer.track_test_accuracy = true;
      options.detector.trainer.test_eval_max_cells =
          flags.GetInt("eval-cells");
      const eval::RepeatedResult result =
          eval::RunRepeatedDetector(pair, options);
      PrintSeries(dataset, result.system, result);
    }
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
