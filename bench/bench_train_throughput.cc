// Training throughput of the data-parallel trainer: cells/second for the
// full Trainer::Fit loop at 1/2/4/8 worker threads (plus the inline 0-thread
// baseline). Writes a machine-readable summary to --json (default
// BENCH_train_throughput.json; see run_train_throughput.sh).
//
// The shard partition is independent of the thread count, so every row of
// this table trains bit-identical weights; only the wall clock changes.
// On a single-core machine the threaded rows mostly measure scheduling
// overhead — the speedup column is meaningful on multi-core hosts.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

struct ThroughputRow {
  int threads = 0;
  double seconds = 0.0;
  double cells_per_sec = 0.0;
};

int Run(int argc, char** argv) {
  FlagSet flags;
  flags.AddString("dataset", "hospital", "dataset generator to train on");
  flags.AddInt("epochs", 20, "training epochs per measurement");
  flags.AddInt("train-rows", 24, "labeled rows in the trainset");
  flags.AddInt("grad-shard-cells", 128, "shard size for gradient accumulation");
  flags.AddDouble("scale", 0.0, "dataset scale (0 = bench default)");
  flags.AddInt("seed", 1000, "generation / training seed");
  flags.AddString("json", "BENCH_train_throughput.json",
                  "output JSON path (empty = skip)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::cerr << flags.Usage("bench_train_throughput");
    return st.ok() ? 0 : 1;
  }

  BenchConfig config;
  config.scale = flags.GetDouble("scale");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string dataset = flags.GetString("dataset");
  const datagen::DatasetPair pair = MakePair(dataset, config);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  if (!frame.ok()) {
    std::cerr << "PrepareData failed: " << frame.status().message() << "\n";
    return 1;
  }
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  const data::EncodedDataset all = data::EncodeCells(*frame, chars);
  std::vector<int64_t> train_ids;
  for (int64_t i = 0; i < flags.GetInt("train-rows"); ++i) {
    train_ids.push_back(i);
  }
  data::EncodedDataset train;
  data::EncodedDataset test;
  data::SplitByRowIds(all, train_ids, &train, &test);

  core::ModelConfig model_config;
  model_config.vocab = all.vocab;
  model_config.max_len = all.max_len;
  model_config.n_attrs = all.n_attrs;
  model_config.enriched = true;
  model_config.seed = config.seed;

  const int epochs = flags.GetInt("epochs");
  const int64_t cells_per_fit = train.num_cells() * epochs;
  std::cout << "=== Training throughput (" << dataset << ", "
            << train.num_cells() << " train cells, " << epochs
            << " epochs per run) ===\n\n";

  std::vector<ThroughputRow> rows;
  double baseline_sec = 0.0;
  eval::TableWriter writer(
      {"Threads", "Fit [sec]", "Cells/sec", "Speedup vs 1T"});
  for (const int threads : {0, 1, 2, 4, 8}) {
    core::ErrorDetectionModel model(model_config);
    core::TrainerOptions options;
    options.epochs = epochs;
    options.seed = config.seed;
    options.train_threads = threads;
    options.grad_shard_cells = flags.GetInt("grad-shard-cells");
    core::Trainer trainer(options);
    const core::TrainHistory history = trainer.Fit(&model, train, &test);

    ThroughputRow row;
    row.threads = threads;
    row.seconds = history.train_seconds;
    row.cells_per_sec = history.train_seconds > 0
                            ? static_cast<double>(cells_per_fit) /
                                  history.train_seconds
                            : 0.0;
    rows.push_back(row);
    if (threads == 1) baseline_sec = row.seconds;
    const double speedup =
        (baseline_sec > 0 && row.seconds > 0) ? baseline_sec / row.seconds
                                              : 0.0;
    writer.AddRow({std::to_string(threads), FormatFixed(row.seconds, 2),
                   FormatFixed(row.cells_per_sec, 0),
                   threads >= 1 ? FormatFixed(speedup, 2) : "-"});
    std::cerr << "[throughput] threads=" << threads << " "
              << FormatFixed(row.seconds, 2) << "s\n";
  }
  writer.Print(std::cout);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    // JsonWriter emits doubles with %.17g, so timings round-trip exactly.
    JsonWriter json(out);
    json.BeginObject();
    json.Key("dataset").String(dataset);
    json.Key("train_cells").Int(train.num_cells());
    json.Key("epochs").Int(epochs);
    json.Key("grad_shard_cells").Int(flags.GetInt("grad-shard-cells"));
    json.Key("runs").BeginArray();
    for (const ThroughputRow& row : rows) {
      json.BeginObject();
      json.Key("threads").Int(row.threads);
      json.Key("fit_seconds").Number(row.seconds);
      json.Key("cells_per_second").Number(row.cells_per_sec);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
