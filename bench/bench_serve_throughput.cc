// Online-serving throughput: a load generator against serve::Server.
//
// Per dataset: train a detector offline (ErrorDetector), persist it as a
// bundle, host it in a serve::Server, and drive the newline-JSON protocol
// over real TCP connections at client concurrency 1 / 2 / 4 / 8. Requests
// are small (--request-cells each, the realistic online shape), so the
// single-connection run pays full padding + dispatch overhead per request
// while concurrent connections coalesce in the micro-batcher into wide
// SIMD-efficient batches — that coalescing is the speedup being measured.
//
// The harness verifies on every run that
//   (a) served verdicts match the offline DetectionReport bit for bit, and
//   (b) each concurrency level returns byte-identical responses,
// and refuses to report a speedup otherwise. Writes BENCH_serve.json
// (cells/sec, p50/p99 request latency, shed rate per concurrency level).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/report.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

struct LoadResult {
  int concurrency = 0;
  int64_t requests = 0;
  int64_t cells = 0;
  int64_t shed_requests = 0;
  int64_t error_requests = 0;
  double seconds = 0.0;
  double cells_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Concatenated response lines in request order — byte-compared across
  /// concurrency levels to prove batching composition never changes answers.
  std::vector<std::string> responses;
};

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ReadLine(int fd, std::string* line, std::string* buffer) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// The request corpus: every cell of the dirty table chunked into
/// `request_cells`-cell detect requests, pre-rendered as protocol lines.
struct Workload {
  std::vector<std::string> lines;
  std::vector<int> cells_per_request;
  int64_t total_cells = 0;
};

Workload BuildWorkload(const data::Table& dirty, int request_cells) {
  Workload w;
  const int n_attrs = dirty.num_columns();
  const int64_t n_rows = dirty.num_rows();
  std::string line;
  int in_request = 0;
  for (int64_t r = 0; r < n_rows; ++r) {
    for (int a = 0; a < n_attrs; ++a) {
      if (in_request == 0) {
        line = R"({"op":"detect","cells":[)";
      } else {
        line += ',';
      }
      line += R"({"attr":)" + std::to_string(a) + R"(,"value":)";
      serve::AppendJsonString(dirty.cell(static_cast<int>(r), a), &line);
      line += '}';
      ++in_request;
      ++w.total_cells;
      if (in_request == request_cells) {
        line += "]}";
        w.lines.push_back(std::move(line));
        w.cells_per_request.push_back(in_request);
        in_request = 0;
      }
    }
  }
  if (in_request > 0) {
    line += "]}";
    w.lines.push_back(std::move(line));
    w.cells_per_request.push_back(in_request);
  }
  return w;
}

/// Drives `concurrency` synchronous client connections over the workload
/// (request i goes to client i % concurrency, preserving per-client order).
LoadResult RunLoad(int port, const Workload& workload, int concurrency) {
  LoadResult result;
  result.concurrency = concurrency;
  result.requests = static_cast<int64_t>(workload.lines.size());
  result.cells = workload.total_cells;
  result.responses.assign(workload.lines.size(), "");
  std::vector<double> latencies_ms(workload.lines.size(), 0.0);
  std::vector<int64_t> shed(static_cast<size_t>(concurrency), 0);
  std::vector<int64_t> errors(static_cast<size_t>(concurrency), 0);

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ConnectTo(port);
      if (fd < 0) {
        errors[static_cast<size_t>(c)] = -1;
        return;
      }
      std::string buffer;
      std::string response;
      for (size_t i = static_cast<size_t>(c); i < workload.lines.size();
           i += static_cast<size_t>(concurrency)) {
        Stopwatch rt;
        if (!SendLine(fd, workload.lines[i]) ||
            !ReadLine(fd, &response, &buffer)) {
          ++errors[static_cast<size_t>(c)];
          break;
        }
        latencies_ms[i] = rt.ElapsedSeconds() * 1e3;
        if (response.find("\"status\":\"OK\"") == std::string::npos) {
          if (response.find("\"OVERLOADED\"") != std::string::npos) {
            ++shed[static_cast<size_t>(c)];
          } else {
            ++errors[static_cast<size_t>(c)];
          }
        }
        result.responses[i] = std::move(response);
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  result.seconds = wall.ElapsedSeconds();
  for (const int64_t s : shed) result.shed_requests += s;
  for (const int64_t e : errors) result.error_requests += e;
  result.cells_per_sec =
      result.seconds > 0
          ? static_cast<double>(result.cells) / result.seconds
          : 0.0;

  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    result.p50_ms = sorted[sorted.size() / 2];
    result.p99_ms = sorted[std::min(sorted.size() - 1,
                                    sorted.size() * 99 / 100)];
  }
  return result;
}

/// Checks every served verdict of `run` against the offline report's
/// predictions (requests cover the frame cell by cell, tuple-major).
bool MatchesOfflineReport(const LoadResult& run, const Workload& workload,
                          const std::vector<uint8_t>& predicted) {
  size_t cell = 0;
  for (size_t i = 0; i < run.responses.size(); ++i) {
    auto doc = serve::JsonValue::Parse(run.responses[i]);
    if (!doc.ok() || doc->GetString("status") != "OK") return false;
    const serve::JsonValue* results = doc->Find("results");
    if (results == nullptr || !results->is_array() ||
        static_cast<int>(results->items().size()) !=
            workload.cells_per_request[i]) {
      return false;
    }
    for (const serve::JsonValue& item : results->items()) {
      const serve::JsonValue* error = item.Find("error");
      if (error == nullptr || cell >= predicted.size() ||
          error->as_bool() != (predicted[cell] != 0)) {
        return false;
      }
      ++cell;
    }
  }
  return cell == predicted.size();
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_serve.json");
  flags.AddInt("request-cells", 4, "cells per detect request");
  flags.AddInt("max-batch", 64, "micro-batcher max batch (cells)");
  flags.AddInt("max-delay-us", 2000, "micro-batcher window (microseconds)");
  flags.AddInt("queue-capacity", 4096, "admission queue bound (cells)");
  flags.AddInt("max-concurrency", 8, "highest client concurrency level");
  flags.AddString("server-mode", "reactor",
                  "transport: reactor (epoll) or blocking (thread/conn)");
  flags.AddInt("replicas", 1, "engine replicas per served model");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_serve_throughput");
  const int request_cells = std::max(1, flags.GetInt("request-cells"));
  const int max_concurrency = std::max(1, flags.GetInt("max-concurrency"));
  const std::string server_mode = flags.GetString("server-mode");
  if (server_mode != "reactor" && server_mode != "blocking") {
    std::cerr << "unknown --server-mode: " << server_mode << "\n";
    return 1;
  }

  std::cout << "=== Serving throughput (mode=" << server_mode
            << ", replicas=" << flags.GetInt("replicas")
            << ", request_cells=" << request_cells
            << ", max_batch=" << flags.GetInt("max-batch")
            << ", window=" << flags.GetInt("max-delay-us") << "us) ===\n\n";

  struct DatasetResult {
    std::string dataset;
    int64_t cells = 0;
    double train_seconds = 0.0;
    std::vector<LoadResult> levels;
    bool match_offline = false;
    bool levels_identical = false;
  };
  std::vector<DatasetResult> all;

  eval::TableWriter writer({"Dataset", "Conc", "Req", "Cells/s", "p50 ms",
                            "p99 ms", "Shed", "Speedup", "Match"});
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);

    core::DetectorOptions options;
    options.model = "etsb";
    options.n_label_tuples = config.n_label_tuples;
    options.trainer.epochs = config.epochs;
    options.seed = config.seed;
    core::ErrorDetector detector(options);
    core::TrainedDetector trained;
    Stopwatch train_timer;
    auto report = detector.Run(pair.dirty, pair.clean, &trained);
    if (!report.ok()) {
      std::cerr << dataset << ": training failed: "
                << report.status().message() << "\n";
      return 1;
    }
    DatasetResult dr;
    dr.dataset = dataset;
    dr.train_seconds = train_timer.ElapsedSeconds();

    const std::string bundle_dir = ".birnn-serve-bench-" + dataset;
    if (Status st = serve::SaveDetectorBundle(trained, bundle_dir);
        !st.ok()) {
      std::cerr << dataset << ": bundle save failed: " << st.message() << "\n";
      return 1;
    }
    serve::ModelRegistry registry;
    if (Status st = registry.LoadBundle(dataset, bundle_dir); !st.ok()) {
      std::cerr << dataset << ": bundle load failed: " << st.message() << "\n";
      return 1;
    }

    serve::ServerOptions server_options;
    server_options.mode = server_mode == "blocking"
                              ? serve::ServeMode::kBlocking
                              : serve::ServeMode::kReactor;
    server_options.io_threads = max_concurrency;
    server_options.batcher.max_batch = flags.GetInt("max-batch");
    server_options.batcher.max_delay_us = flags.GetInt("max-delay-us");
    server_options.batcher.queue_capacity = flags.GetInt("queue-capacity");
    server_options.batcher.replicas = flags.GetInt("replicas");
    serve::Server server(&registry, server_options);
    if (Status st = server.Start(); !st.ok()) {
      std::cerr << dataset << ": server start failed: " << st.message()
                << "\n";
      return 1;
    }

    const Workload workload = BuildWorkload(pair.dirty, request_cells);
    dr.cells = workload.total_cells;

    // Warmup pass (populates allocator pools and the page cache) then the
    // measured ladder.
    (void)RunLoad(server.port(), workload, 1);
    for (int concurrency = 1; concurrency <= max_concurrency;
         concurrency *= 2) {
      dr.levels.push_back(RunLoad(server.port(), workload, concurrency));
    }
    server.Shutdown();
    std::filesystem::remove_all(bundle_dir);

    dr.match_offline =
        MatchesOfflineReport(dr.levels.front(), workload, report->predicted);
    dr.levels_identical = true;
    for (const LoadResult& level : dr.levels) {
      if (level.responses != dr.levels.front().responses) {
        dr.levels_identical = false;
      }
    }

    const double base = dr.levels.front().cells_per_sec;
    for (const LoadResult& level : dr.levels) {
      const double speedup = base > 0 ? level.cells_per_sec / base : 0.0;
      writer.AddRow({dataset, std::to_string(level.concurrency),
                     std::to_string(level.requests),
                     FormatFixed(level.cells_per_sec, 0),
                     FormatFixed(level.p50_ms, 2), FormatFixed(level.p99_ms, 2),
                     std::to_string(level.shed_requests),
                     FormatFixed(speedup, 1) + "x",
                     dr.match_offline && dr.levels_identical ? "yes" : "NO"});
    }
    std::cerr << "[serve] " << dataset << " cells=" << dr.cells
              << " train=" << FormatFixed(dr.train_seconds, 1) << "s"
              << (dr.match_offline ? "" : " OFFLINE-MISMATCH")
              << (dr.levels_identical ? "" : " LEVEL-MISMATCH") << "\n";
    all.push_back(std::move(dr));
  }
  writer.Print(std::cout);

  int failures = 0;
  for (const DatasetResult& dr : all) {
    if (!dr.match_offline || !dr.levels_identical) ++failures;
    for (const LoadResult& level : dr.levels) {
      if (level.error_requests != 0) ++failures;
    }
  }
  if (failures > 0) {
    std::cout << "\nWARNING: " << failures
              << " verification failure(s) — speedups invalid\n";
  }

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("server_mode").String(server_mode);
    json.Key("replicas").Int(flags.GetInt("replicas"));
    json.Key("request_cells").Int(request_cells);
    json.Key("max_batch").Int(flags.GetInt("max-batch"));
    json.Key("max_delay_us").Int(flags.GetInt("max-delay-us"));
    json.Key("queue_capacity").Int(flags.GetInt("queue-capacity"));
    json.Key("epochs").Int(config.epochs);
    json.Key("scale").Number(config.scale);
    json.Key("datasets").BeginArray();
    for (const DatasetResult& dr : all) {
      const double base = dr.levels.front().cells_per_sec;
      json.BeginObject();
      json.Key("dataset").String(dr.dataset);
      json.Key("cells").Int(dr.cells);
      json.Key("train_seconds").Number(dr.train_seconds);
      json.Key("served_matches_offline").Bool(dr.match_offline);
      json.Key("levels_bit_identical").Bool(dr.levels_identical);
      json.Key("levels").BeginArray();
      for (const LoadResult& level : dr.levels) {
        json.BeginObject();
        json.Key("concurrency").Int(level.concurrency);
        json.Key("requests").Int(level.requests);
        json.Key("cells").Int(level.cells);
        json.Key("seconds").Number(level.seconds);
        json.Key("cells_per_sec").Number(level.cells_per_sec);
        json.Key("p50_ms").Number(level.p50_ms);
        json.Key("p99_ms").Number(level.p99_ms);
        json.Key("shed_requests").Int(level.shed_requests);
        json.Key("shed_rate")
            .Number(level.requests > 0
                        ? static_cast<double>(level.shed_requests) /
                              static_cast<double>(level.requests)
                        : 0.0);
        json.Key("speedup_vs_1")
            .Number(base > 0 ? level.cells_per_sec / base : 0.0);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    json.Key("obs");
    WriteObsJson(&json);
    json.EndObject();
    out << "\n";
    std::cout << "\nwrote " << config.json_path << "\n";
  }
  WriteObsArtifacts(config);
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
