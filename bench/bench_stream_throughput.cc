// Streaming (CDC) detection throughput: an open-loop delta generator
// against stream::TableSession.
//
// Per dataset: train a detector offline (ErrorDetector), wrap it as a
// stream-capable bundle, then drive three phases through a table session:
//
//   1. replay  — the whole dirty table arrives as inserts. The materialized
//      verdict store must reproduce the offline DetectionReport bit for bit
//      (the streaming acceptance invariant).
//   2. churn   — `--deltas` pre-generated insert/update deltas. Updates hit
//      Zipf-skewed hot rows (real CDC feeds concentrate on a few tuples,
//      which is also what makes the content memo earn its keep); inserts
//      append fresh tuples whose values are resampled from the table. The
//      sequence is fixed before the timed loop starts — generation cost and
//      apply cost never mix — and per-delta latency is recorded for p50/p99.
//   3. drift   — one attribute starts receiving overlong values full of
//      characters the train dictionary has never seen. The session must
//      latch its max-length and OOV-rate alarms for that attribute and stay
//      quiet on those dimensions everywhere else; fire accuracy is reported.
//
// After churn the harness re-detects the materialized table through the
// batch path (TableSession::DetectAll) — that sweep is simultaneously the
// zero-mismatch equivalence oracle and the naive "re-detect the whole table
// per delta" baseline the incremental path is compared against. With --gate
// the binary exits nonzero on any equivalence mismatch, a p99 delta latency
// above --p99-gate-ms, an incremental speedup below --speedup-floor, or a
// missed/false drift alarm. Writes BENCH_stream.json.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/report.h"
#include "serve/bundle.h"
#include "stream/session.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

/// Discrete Zipf(s) over ranks [0, n): P(k) ∝ 1/(k+1)^s, drawn by binary
/// search over a cumulative table (rebuilt lazily as n grows — the live-row
/// set keeps growing while churn inserts land). Rank 0 is the hottest; the
/// caller maps ranks onto row ids.
class ZipfSampler {
 public:
  ZipfSampler(double s, uint64_t seed) : s_(s), rng_(seed) {}

  int64_t Sample(int64_t n) {
    if (static_cast<int64_t>(cdf_.size()) < n) Extend(n);
    const double u = rng_.UniformDouble() * cdf_[static_cast<size_t>(n - 1)];
    const auto it = std::lower_bound(cdf_.begin(),
                                     cdf_.begin() + static_cast<size_t>(n), u);
    return static_cast<int64_t>(it - cdf_.begin());
  }

  Rng* rng() { return &rng_; }

 private:
  void Extend(int64_t n) {
    double total = cdf_.empty() ? 0.0 : cdf_.back();
    cdf_.reserve(static_cast<size_t>(n));
    for (int64_t k = static_cast<int64_t>(cdf_.size()); k < n; ++k) {
      total += std::pow(static_cast<double>(k + 1), -s_);
      cdf_.push_back(total);
    }
  }

  double s_;
  Rng rng_;
  std::vector<double> cdf_;
};

struct PhaseTiming {
  int64_t deltas = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

PhaseTiming Summarize(const std::vector<double>& latencies_ms,
                      double seconds) {
  PhaseTiming t;
  t.deltas = static_cast<int64_t>(latencies_ms.size());
  t.seconds = seconds;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    t.p50_ms = sorted[sorted.size() / 2];
    t.p99_ms = sorted[std::min(sorted.size() - 1, sorted.size() * 99 / 100)];
  }
  return t;
}

struct DatasetResult {
  std::string dataset;
  int64_t rows = 0;
  int n_attrs = 0;
  double train_seconds = 0.0;

  PhaseTiming replay;
  PhaseTiming churn;
  double churn_cells_per_delta = 0.0;
  double churn_memo_hit_rate = 0.0;
  double deltas_per_sec = 0.0;

  /// The naive baseline: one whole-table batch re-detection (what a
  /// non-incremental design would pay per delta).
  double full_detect_seconds = 0.0;
  double speedup_vs_full = 0.0;

  bool replay_matches_offline = false;
  int64_t equivalence_mismatches = -1;

  int drift_expected = 0;
  int drift_fired = 0;
  int drift_false_positives = 0;

  std::vector<std::string> failures;
};

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_stream.json");
  flags.AddInt("deltas", 2000, "churn-phase deltas per dataset");
  flags.AddDouble("update-frac", 0.8,
                  "fraction of churn deltas that are updates (rest insert)");
  flags.AddDouble("zipf-s", 1.1, "Zipf exponent for hot-row selection");
  flags.AddInt("drift-updates", 96,
               "polluted updates fed to attribute 0 in the drift phase");
  flags.AddBool("gate", false,
                "exit nonzero on equivalence, latency, speedup or "
                "drift-accuracy failures");
  flags.AddDouble("p99-gate-ms", 250.0,
                  "gate: churn p99 delta latency ceiling (ms)");
  flags.AddDouble("speedup-floor", 20.0,
                  "gate: per-delta re-scoring must beat naive whole-table "
                  "re-detection by at least this factor");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_stream_throughput");
  const int n_deltas = std::max(1, flags.GetInt("deltas"));
  const double update_frac =
      std::min(1.0, std::max(0.0, flags.GetDouble("update-frac")));
  const double zipf_s = flags.GetDouble("zipf-s");
  const int drift_updates = std::max(1, flags.GetInt("drift-updates"));
  const bool gate = flags.GetBool("gate");

  std::cout << "=== Streaming delta throughput (deltas=" << n_deltas
            << ", update_frac=" << FormatFixed(update_frac, 2)
            << ", zipf_s=" << FormatFixed(zipf_s, 2) << ") ===\n\n";

  std::vector<DatasetResult> all;
  eval::TableWriter writer({"Dataset", "Rows", "Deltas", "Deltas/s",
                            "Cells/delta", "Memo hit", "p99 ms", "Full ms",
                            "Speedup", "Equiv", "Drift"});

  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    DatasetResult dr;
    dr.dataset = dataset;
    dr.rows = pair.dirty.num_rows();
    dr.n_attrs = pair.dirty.num_columns();

    core::DetectorOptions options;
    options.model = "etsb";
    options.n_label_tuples = config.n_label_tuples;
    options.trainer.epochs = config.epochs;
    options.seed = config.seed;
    core::ErrorDetector detector(options);
    core::TrainedDetector trained;
    Stopwatch train_timer;
    auto report = detector.Run(pair.dirty, pair.clean, &trained);
    if (!report.ok()) {
      std::cerr << dataset << ": training failed: "
                << report.status().message() << "\n";
      return 1;
    }
    dr.train_seconds = train_timer.ElapsedSeconds();

    auto loaded = serve::MakeLoadedDetector(std::move(trained));
    if (!loaded.ok()) {
      std::cerr << dataset << ": " << loaded.status().message() << "\n";
      return 1;
    }
    auto shared = std::make_shared<const serve::LoadedDetector>(
        std::move(loaded).value());

    stream::SessionOptions session_options;
    // Arm drift detection even at reduced CI scales (tiny tables would
    // otherwise never reach the production min_cells).
    session_options.drift.min_cells = std::min<int64_t>(128, dr.rows);
    // The drift phase asserts on the deterministic length/OOV dimensions;
    // the rate dimensions depend on the trained model's verdicts and the
    // resampled churn mix, so keep them out of the accuracy measurement.
    session_options.drift.empty_rate_delta = 2.0f;
    session_options.drift.error_rate_delta = 2.0f;
    auto session = stream::TableSession::Create(shared, session_options);
    if (!session.ok()) {
      std::cerr << dataset << ": " << session.status().message() << "\n";
      return 1;
    }
    stream::TableSession& s = **session;

    // Phase 1: replay the dirty table as inserts.
    {
      std::vector<double> latencies_ms;
      latencies_ms.reserve(static_cast<size_t>(dr.rows));
      Stopwatch wall;
      for (int64_t r = 0; r < dr.rows; ++r) {
        std::vector<std::string> tuple;
        tuple.reserve(static_cast<size_t>(dr.n_attrs));
        for (int a = 0; a < dr.n_attrs; ++a) {
          tuple.push_back(pair.dirty.cell(static_cast<int>(r), a));
        }
        Stopwatch one;
        if (Status st = s.Insert(r, std::move(tuple)); !st.ok()) {
          std::cerr << dataset << ": replay insert failed: " << st.message()
                    << "\n";
          return 1;
        }
        latencies_ms.push_back(one.ElapsedMillis());
      }
      dr.replay = Summarize(latencies_ms, wall.ElapsedSeconds());
    }
    const std::vector<uint8_t> replayed = s.MaterializedVerdicts();
    dr.replay_matches_offline = replayed == report->predicted;
    if (!dr.replay_matches_offline) {
      dr.failures.push_back("replay-vs-offline mismatch");
    }

    // Phase 2: churn. Pre-generate the full delta sequence (open loop),
    // then apply it back to back under the clock.
    struct ChurnDelta {
      bool is_update = false;
      int64_t row = 0;
      int attr = 0;
      std::string value;
      std::vector<std::string> values;
    };
    ZipfSampler zipf(zipf_s, config.seed + 17);
    Rng* rng = zipf.rng();
    std::vector<int64_t> live_rows;
    live_rows.reserve(static_cast<size_t>(dr.rows) + n_deltas);
    for (int64_t r = 0; r < dr.rows; ++r) live_rows.push_back(r);
    // Hot ranks should not coincide with insertion order: shuffle once so
    // rank 0 is an arbitrary row, as in a real feed.
    rng->Shuffle(&live_rows);
    int64_t next_row = dr.rows;
    auto resample_value = [&](int attr) -> const std::string& {
      const int64_t r = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(dr.rows)));
      return pair.dirty.cell(static_cast<int>(r), attr);
    };
    std::vector<ChurnDelta> churn;
    churn.reserve(static_cast<size_t>(n_deltas));
    for (int i = 0; i < n_deltas; ++i) {
      ChurnDelta d;
      d.is_update = rng->Bernoulli(update_frac);
      if (d.is_update) {
        d.row = live_rows[static_cast<size_t>(
            zipf.Sample(static_cast<int64_t>(live_rows.size())))];
        d.attr = static_cast<int>(
            rng->UniformInt(static_cast<uint64_t>(dr.n_attrs)));
        d.value = resample_value(d.attr);
      } else {
        d.row = next_row++;
        d.values.reserve(static_cast<size_t>(dr.n_attrs));
        for (int a = 0; a < dr.n_attrs; ++a) {
          d.values.push_back(resample_value(a));
        }
        live_rows.push_back(d.row);
      }
      churn.push_back(std::move(d));
    }

    const stream::SessionStats before = s.stats();
    {
      std::vector<double> latencies_ms;
      latencies_ms.reserve(churn.size());
      Stopwatch wall;
      for (ChurnDelta& d : churn) {
        Stopwatch one;
        Status st = d.is_update
                        ? s.Update(d.row, d.attr, std::move(d.value))
                        : s.Insert(d.row, std::move(d.values));
        if (!st.ok()) {
          std::cerr << dataset << ": churn delta failed: " << st.message()
                    << "\n";
          return 1;
        }
        latencies_ms.push_back(one.ElapsedMillis());
      }
      dr.churn = Summarize(latencies_ms, wall.ElapsedSeconds());
    }
    const stream::SessionStats after = s.stats();
    const int64_t churn_cells = after.cells_scored - before.cells_scored;
    dr.churn_cells_per_delta =
        static_cast<double>(churn_cells) / static_cast<double>(n_deltas);
    dr.churn_memo_hit_rate =
        churn_cells > 0
            ? static_cast<double>(after.memo_hits - before.memo_hits) /
                  static_cast<double>(churn_cells)
            : 0.0;
    dr.deltas_per_sec =
        dr.churn.seconds > 0
            ? static_cast<double>(n_deltas) / dr.churn.seconds
            : 0.0;

    // Equivalence oracle + naive baseline in one sweep: re-detect the
    // materialized table through the batch path.
    Stopwatch full_timer;
    auto batch = s.DetectAll();
    dr.full_detect_seconds = full_timer.ElapsedSeconds();
    if (!batch.ok()) {
      std::cerr << dataset << ": DetectAll failed: "
                << batch.status().message() << "\n";
      return 1;
    }
    const std::vector<uint8_t> incremental = s.MaterializedVerdicts();
    dr.equivalence_mismatches = 0;
    if (incremental.size() != batch->size()) {
      dr.equivalence_mismatches =
          static_cast<int64_t>(incremental.size() + batch->size());
    } else {
      for (size_t i = 0; i < incremental.size(); ++i) {
        if (incremental[i] != (*batch)[i]) ++dr.equivalence_mismatches;
      }
    }
    if (dr.equivalence_mismatches != 0) {
      dr.failures.push_back(
          std::to_string(dr.equivalence_mismatches) +
          " incremental-vs-batch verdict mismatch(es)");
    }
    const double mean_delta_seconds =
        dr.churn.deltas > 0 ? dr.churn.seconds / dr.churn.deltas : 0.0;
    dr.speedup_vs_full = mean_delta_seconds > 0
                             ? dr.full_detect_seconds / mean_delta_seconds
                             : 0.0;
    if (gate && dr.speedup_vs_full < flags.GetDouble("speedup-floor")) {
      dr.failures.push_back("speedup " + FormatFixed(dr.speedup_vs_full, 1) +
                            "x below floor");
    }
    if (gate && dr.churn.p99_ms > flags.GetDouble("p99-gate-ms")) {
      dr.failures.push_back("churn p99 " + FormatFixed(dr.churn.p99_ms, 2) +
                            "ms above gate");
    }

    // Phase 3: drift. One attribute turns hostile — values twice its frozen
    // maximum length made of characters the dictionary has never indexed —
    // so exactly its max-length and OOV-rate alarms must latch. The
    // shortest-valued attribute is polluted so the doubled length survives
    // the preparation-time truncation cap and the alarm can actually fire.
    {
      int polluted = 0;
      for (int a = 1; a < dr.n_attrs; ++a) {
        const int32_t mx = shared->attr_max_value_len()[a];
        if (mx > 0 && (shared->attr_max_value_len()[polluted] <= 0 ||
                       mx < shared->attr_max_value_len()[polluted])) {
          polluted = a;
        }
      }
      const std::string junk(
          std::max<size_t>(4, 2 * static_cast<size_t>(
                                  shared->attr_max_value_len()[polluted])),
          '\x01');
      for (int i = 0; i < drift_updates; ++i) {
        const int64_t row = live_rows[static_cast<size_t>(
            zipf.Sample(static_cast<int64_t>(live_rows.size())))];
        if (Status st = s.Update(row, polluted, junk); !st.ok()) {
          std::cerr << dataset << ": drift update failed: " << st.message()
                    << "\n";
          return 1;
        }
      }
      dr.drift_expected = 2;  // kMaxLen + kOovRate on the polluted attr.
      for (const stream::DriftAlarm& alarm : s.drift_alarms()) {
        const bool length_or_oov =
            alarm.kind == stream::DriftKind::kMaxLen ||
            alarm.kind == stream::DriftKind::kOovRate;
        if (!length_or_oov) continue;
        if (alarm.attr == polluted) {
          ++dr.drift_fired;
        } else {
          ++dr.drift_false_positives;
        }
      }
      if (gate && (dr.drift_fired != dr.drift_expected ||
                   dr.drift_false_positives != 0)) {
        dr.failures.push_back("drift alarms " +
                              std::to_string(dr.drift_fired) + "/" +
                              std::to_string(dr.drift_expected) + " fired, " +
                              std::to_string(dr.drift_false_positives) +
                              " false");
      }
    }

    writer.AddRow(
        {dataset, std::to_string(dr.rows), std::to_string(n_deltas),
         FormatFixed(dr.deltas_per_sec, 0),
         FormatFixed(dr.churn_cells_per_delta, 2),
         FormatFixed(dr.churn_memo_hit_rate * 100.0, 0) + "%",
         FormatFixed(dr.churn.p99_ms, 2),
         FormatFixed(dr.full_detect_seconds * 1e3, 1),
         FormatFixed(dr.speedup_vs_full, 0) + "x",
         dr.replay_matches_offline && dr.equivalence_mismatches == 0 ? "yes"
                                                                     : "NO",
         std::to_string(dr.drift_fired) + "/" +
             std::to_string(dr.drift_expected)});
    std::cerr << "[stream] " << dataset << " rows=" << dr.rows
              << " train=" << FormatFixed(dr.train_seconds, 1) << "s"
              << " replay=" << FormatFixed(dr.replay.seconds, 2) << "s"
              << (dr.failures.empty() ? "" : " FAIL") << "\n";
    all.push_back(std::move(dr));
  }
  writer.Print(std::cout);

  int failures = 0;
  for (const DatasetResult& dr : all) {
    for (const std::string& f : dr.failures) {
      std::cout << "FAIL " << dr.dataset << ": " << f << "\n";
      ++failures;
    }
  }
  std::cout << (failures == 0 ? "\nall streaming checks passed\n"
                              : "\n" + std::to_string(failures) +
                                    " streaming check failure(s)\n");

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("deltas").Int(n_deltas);
    json.Key("update_frac").Number(update_frac);
    json.Key("zipf_s").Number(zipf_s);
    json.Key("drift_updates").Int(drift_updates);
    json.Key("epochs").Int(config.epochs);
    json.Key("scale").Number(config.scale);
    json.Key("gates_passed").Bool(failures == 0);
    json.Key("datasets").BeginArray();
    for (const DatasetResult& dr : all) {
      json.BeginObject();
      json.Key("dataset").String(dr.dataset);
      json.Key("rows").Int(dr.rows);
      json.Key("n_attrs").Int(dr.n_attrs);
      json.Key("train_seconds").Number(dr.train_seconds);
      json.Key("replay_seconds").Number(dr.replay.seconds);
      json.Key("replay_matches_offline").Bool(dr.replay_matches_offline);
      json.Key("deltas_per_sec").Number(dr.deltas_per_sec);
      json.Key("cells_per_delta").Number(dr.churn_cells_per_delta);
      json.Key("memo_hit_rate").Number(dr.churn_memo_hit_rate);
      json.Key("p50_delta_ms").Number(dr.churn.p50_ms);
      json.Key("p99_delta_ms").Number(dr.churn.p99_ms);
      json.Key("full_detect_ms").Number(dr.full_detect_seconds * 1e3);
      json.Key("speedup_vs_full_redetect").Number(dr.speedup_vs_full);
      json.Key("equivalence_mismatches").Int(dr.equivalence_mismatches);
      json.Key("drift_alarms_expected").Int(dr.drift_expected);
      json.Key("drift_alarms_fired").Int(dr.drift_fired);
      json.Key("drift_false_positives").Int(dr.drift_false_positives);
      json.Key("drift_fire_accuracy")
          .Number(dr.drift_expected > 0
                      ? static_cast<double>(dr.drift_fired) /
                            static_cast<double>(dr.drift_expected)
                      : 0.0);
      json.EndObject();
    }
    json.EndArray();
    json.Key("obs");
    WriteObsJson(&json);
    json.EndObject();
    out << "\n";
    std::cout << "wrote " << config.json_path << "\n";
  }
  WriteObsArtifacts(config);
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
