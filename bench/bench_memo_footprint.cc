// Warehouse-scale memo footprint: streams a duplicate-heavy synthetic
// table (datagen/synthetic.h) through the cross-sweep verdict memo in
// bounded chunks — the full table is never resident — and compares four
// memo arms over the identical cell stream:
//   legacy     — the PR 7 unordered_map<hash, vector<Entry>> VerdictMemo
//                (replicated below as the baseline; the live code now runs
//                the succinct index),
//   succinct   — core::ContentMemo, unbounded, pre-sized,
//   evict      — ContentMemo under --budget-mb, overflowing shards dropped,
//   spill      — ContentMemo under --budget-mb, overflowing shards sealed
//                into checksummed on-disk segments.
// Every arm must produce bit-identical p_error streams (compared per
// chunk); the bench reports cells/sec, probe ns/cell, resident bytes,
// bytes/unique-cell, bloom accounting and peak RSS to --json
// (BENCH_memo.json), and with --gate fails on any verdict mismatch, a
// bytes ratio below --min-bytes-ratio, a budget overrun, or an RSS cap
// overrun.
//
// A second section replays the real-table serving shape (beers / hospital
// / tax by default): populate once, then --reps all-hit sweeps, gating the
// succinct arm's cells/sec at --min-speed-ratio of the legacy arm's.

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_common.h"
#include "core/content_index.h"
#include "core/inference.h"
#include "core/model.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

// ---------------------------------------------------------------------------
// Baseline: the PR 7 serve::VerdictMemo, replicated verbatim so the bench
// keeps measuring the structure the succinct index replaced even though
// the live serve path no longer builds it.
// ---------------------------------------------------------------------------

class LegacyVerdictMemo {
 public:
  explicit LegacyVerdictMemo(int64_t capacity)
      : capacity_(std::max<int64_t>(0, capacity)),
        shard_capacity_(std::max<int64_t>(1, capacity_ / kShards)) {}

  int64_t Lookup(const data::EncodedDataset& ds, std::vector<float>* p,
                 std::vector<uint8_t>* hit) const {
    if (capacity_ == 0) return 0;
    int64_t hits = 0;
    for (int64_t i = 0; i < ds.num_cells(); ++i) {
      const uint64_t key = ds.CellContentHash(i);
      const Shard& shard = shards_[key % kShards];
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(key);
      if (it == shard.map.end()) continue;
      for (const Entry& e : it->second) {
        if (Matches(e, ds, i)) {
          (*p)[static_cast<size_t>(i)] = e.p_error;
          (*hit)[static_cast<size_t>(i)] = 1;
          ++hits;
          break;
        }
      }
    }
    return hits;
  }

  void Insert(const data::EncodedDataset& ds, int64_t i, float p_error) {
    if (capacity_ == 0) return;
    const uint64_t key = ds.CellContentHash(i);
    Shard& shard = shards_[key % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<Entry>& chain = shard.map[key];
    for (const Entry& e : chain) {
      if (Matches(e, ds, i)) return;
    }
    if (shard.entries >= shard_capacity_) {
      shard.map.clear();
      shard.entries = 0;
    }
    Entry e;
    e.attr = ds.attrs[static_cast<size_t>(i)];
    std::memcpy(&e.length_norm_bits, &ds.length_norm[static_cast<size_t>(i)],
                sizeof(uint32_t));
    const int len = ds.effective_len(i);
    const int32_t* row = ds.seqs.data() + static_cast<size_t>(i) * ds.max_len;
    e.seq.assign(row, row + len);
    e.p_error = p_error;
    shard.map[key].push_back(std::move(e));
    ++shard.entries;
  }

  int64_t entries() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.entries;
    }
    return total;
  }

  /// Resident heap bytes of the map structure: each heap block is counted
  /// at its true chunk size (malloc_usable_size + the 8-byte glibc chunk
  /// header — that is what the allocator actually consumes). Map nodes are
  /// not reachable as pointers, so they use the computed libstdc++
  /// _Hash_node chunk size; the bucket array's per-entry share is its
  /// pointer slots.
  int64_t ApproxBytes() const {
    // _Hash_node<pair<const uint64_t, vector<Entry>>>: next pointer + the
    // pair, allocated with operator new — chunk = align16(size + 8).
    const int64_t node_chunk =
        (static_cast<int64_t>(sizeof(void*) + sizeof(uint64_t) +
                              sizeof(std::vector<Entry>)) +
         8 + 15) &
        ~int64_t{15};
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += static_cast<int64_t>(shard.map.bucket_count()) *
               static_cast<int64_t>(sizeof(void*));
      for (const auto& [key, chain] : shard.map) {
        (void)key;
        total += node_chunk;
        total += HeapBlockBytes(chain.data(), chain.capacity() * sizeof(Entry));
        for (const Entry& e : chain) {
          total += HeapBlockBytes(e.seq.data(),
                                  e.seq.capacity() * sizeof(int32_t));
        }
      }
    }
    return total;
  }

 private:
  static constexpr int kShards = 16;

  struct Entry {
    uint32_t length_norm_bits = 0;
    int32_t attr = 0;
    float p_error = 0.0f;
    std::vector<int32_t> seq;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> map;
    int64_t entries = 0;
  };

  static int64_t HeapBlockBytes(const void* ptr, size_t logical) {
    if (ptr == nullptr) return 0;
#if defined(__GLIBC__)
    (void)logical;
    return static_cast<int64_t>(
               malloc_usable_size(const_cast<void*>(ptr))) +
           8;  // glibc chunk header.
#else
    return static_cast<int64_t>(logical) + 8;
#endif
  }

  static bool Matches(const Entry& e, const data::EncodedDataset& ds,
                      int64_t i) {
    if (e.attr != ds.attrs[static_cast<size_t>(i)]) return false;
    uint32_t bits;
    std::memcpy(&bits, &ds.length_norm[static_cast<size_t>(i)],
                sizeof(uint32_t));
    if (e.length_norm_bits != bits) return false;
    const int len = ds.effective_len(i);
    if (static_cast<size_t>(len) != e.seq.size()) return false;
    const int32_t* row = ds.seqs.data() + static_cast<size_t>(i) * ds.max_len;
    return std::memcmp(e.seq.data(), row, sizeof(int32_t) * e.seq.size()) == 0;
  }

  int64_t capacity_ = 0;
  int64_t shard_capacity_ = 0;
  Shard shards_[kShards];
};

// The serve-plane dispatch shape with the legacy memo: probe, forward the
// miss subset, scatter + insert (what MicroBatcher::DispatchLoop did
// before PredictProbsMemoized absorbed it).
void LegacySweep(core::InferenceEngine* engine, const data::EncodedDataset& ds,
                 LegacyVerdictMemo* memo, std::vector<float>* probs,
                 double* lookup_seconds) {
  const int64_t n = ds.num_cells();
  probs->assign(static_cast<size_t>(n), 0.0f);
  std::vector<uint8_t> hit(static_cast<size_t>(n), 0);
  Stopwatch probe_timer;
  const int64_t hits = memo->Lookup(ds, probs, &hit);
  *lookup_seconds += probe_timer.ElapsedSeconds();
  if (hits >= n) return;
  std::vector<int64_t> miss;
  miss.reserve(static_cast<size_t>(n - hits));
  for (int64_t i = 0; i < n; ++i) {
    if (!hit[static_cast<size_t>(i)]) miss.push_back(i);
  }
  const data::EncodedDataset miss_ds = data::TakeCells(ds, miss);
  std::vector<float> miss_probs;
  engine->PredictProbs(miss_ds, {}, &miss_probs);
  for (size_t k = 0; k < miss.size(); ++k) {
    (*probs)[static_cast<size_t>(miss[k])] = miss_probs[k];
    memo->Insert(miss_ds, static_cast<int64_t>(k), miss_probs[k]);
  }
}

// ---------------------------------------------------------------------------
// Arms
// ---------------------------------------------------------------------------

struct Arm {
  std::string name;
  std::unique_ptr<LegacyVerdictMemo> legacy;
  std::unique_ptr<core::ContentMemo> memo;
  double seconds = 0.0;         ///< wall clock across all chunk sweeps.
  double lookup_seconds = 0.0;  ///< legacy arm: wall clock inside Lookup.
  int64_t cells = 0;
  int64_t mismatches = 0;  ///< float-bit differences vs the reference arm.
  int64_t max_bytes = 0;   ///< high-water resident bytes observed.
  uint64_t checksum = 1469598103934665603ULL;  ///< FNV over prob bits.
};

void FoldChecksum(const std::vector<float>& probs, uint64_t* checksum) {
  for (const float p : probs) {
    uint32_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    for (int b = 0; b < 4; ++b) {
      *checksum ^= (bits >> (8 * b)) & 0xFFu;
      *checksum *= 1099511628211ULL;
    }
  }
}

int64_t CountMismatches(const std::vector<float>& got,
                        const std::vector<float>& want) {
  int64_t n = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    uint32_t a, b;
    std::memcpy(&a, &got[i], sizeof(a));
    std::memcpy(&b, &want[i], sizeof(b));
    if (a != b) ++n;
  }
  return n;
}

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KB on Linux.
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_memo.json");
  flags.AddInt("rows", 1000000, "synthetic table rows");
  flags.AddInt("cols", 2, "synthetic table columns");
  flags.AddInt("uniques", 100000, "distinct cell contents per column");
  flags.AddInt("chunk-rows", 65536, "rows streamed per sweep chunk");
  flags.AddInt("budget-mb", 24,
               "memo byte budget for the evict/spill arms (MiB)");
  flags.AddInt("eval-batch", 256, "cells per forward batch");
  flags.AddString("spill-dir", "/tmp/birnn-memo-spill",
                  "directory for the spill arm's segments");
  flags.AddBool("gate", false,
                "exit nonzero on parity/bytes-ratio/budget/RSS failures");
  flags.AddDouble("min-bytes-ratio", 4.0,
                  "gate: legacy bytes / succinct bytes lower bound");
  flags.AddDouble("min-speed-ratio", 0.95,
                  "gate: succinct / legacy cells-per-sec lower bound on the "
                  "real-table all-hit sweeps");
  flags.AddInt("rss-cap-mb", 0, "gate: peak RSS ceiling in MiB (0 = off)");
  flags.AddBool("skip-datasets", false,
                "skip the real-table speed-ratio section");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_memo_footprint");

  datagen::SyntheticSpec spec;
  spec.rows = flags.GetInt("rows");
  spec.cols = flags.GetInt("cols");
  spec.uniques_per_col = flags.GetInt("uniques");
  spec.seed = config.seed;
  const int64_t chunk_rows =
      std::max<int64_t>(1, flags.GetInt("chunk-rows"));
  const int64_t budget_bytes =
      static_cast<int64_t>(flags.GetInt("budget-mb")) * (1 << 20);
  const int eval_batch = flags.GetInt("eval-batch");

  std::cout << "=== Memo footprint (rows=" << spec.rows << ", cols="
            << spec.cols << ", uniques/col=" << spec.uniques_per_col
            << ", budget=" << flags.GetInt("budget-mb") << " MiB) ===\n\n";

  const datagen::SyntheticDataGen gen(spec);
  const int64_t total_uniques = gen.total_unique_cells();

  // Tiny model: the bench measures the memo layer, not the forward path —
  // but predictions still flow through the real engine so parity means
  // something.
  core::ModelConfig model_config;
  model_config.vocab = spec.vocab;
  model_config.max_len = spec.max_len;
  model_config.n_attrs = spec.cols;
  model_config.units = 16;
  model_config.stacks = 1;
  model_config.enriched = true;
  model_config.seed = config.seed;
  core::ErrorDetectionModel model(model_config);

  data::EncodedDataset chunk;
  gen.FillChunk(0, std::min<int64_t>(spec.rows, 2048), &chunk);
  model.CalibrateBatchNorm(chunk, eval_batch);

  core::InferenceOptions engine_options;
  engine_options.eval_batch = eval_batch;
  core::InferenceEngine engine(model, engine_options);

  std::vector<Arm> arms;
  {
    Arm unbounded;
    unbounded.name = "succinct";
    core::ContentMemoOptions options;
    options.capacity = total_uniques * 2 + 1024;
    options.expected_entries = total_uniques;
    arms.push_back(std::move(unbounded));
    arms.back().memo = std::make_unique<core::ContentMemo>(options);

    Arm legacy;
    legacy.name = "legacy";
    legacy.legacy =
        std::make_unique<LegacyVerdictMemo>(total_uniques * 2 + 1024);
    arms.push_back(std::move(legacy));

    Arm evict;
    evict.name = "evict";
    core::ContentMemoOptions evict_options;
    evict_options.capacity = total_uniques * 2 + 1024;
    evict_options.budget_bytes = budget_bytes;
    arms.push_back(std::move(evict));
    arms.back().memo = std::make_unique<core::ContentMemo>(evict_options);

    Arm spill;
    spill.name = "spill";
    core::ContentMemoOptions spill_options;
    spill_options.capacity = total_uniques * 2 + 1024;
    spill_options.budget_bytes = budget_bytes;
    spill_options.spill = true;
    spill_options.spill_dir = flags.GetString("spill-dir");
    arms.push_back(std::move(spill));
    arms.back().memo = std::make_unique<core::ContentMemo>(spill_options);
  }

  // Stream the table once per arm, chunk-interleaved: each chunk is
  // generated once, swept by every arm, and the verdict streams compared
  // bit-for-bit against the first (unbounded succinct) arm.
  std::vector<float> reference;
  std::vector<float> probs;
  for (int64_t row = 0; row < spec.rows; row += chunk_rows) {
    const int64_t n_rows = std::min<int64_t>(chunk_rows, spec.rows - row);
    gen.FillChunk(row, n_rows, &chunk);
    for (size_t a = 0; a < arms.size(); ++a) {
      Arm& arm = arms[a];
      Stopwatch timer;
      if (arm.legacy != nullptr) {
        LegacySweep(&engine, chunk, arm.legacy.get(), &probs,
                    &arm.lookup_seconds);
      } else {
        engine.PredictProbsMemoized(chunk, arm.memo.get(), &probs);
      }
      arm.seconds += timer.ElapsedSeconds();
      arm.cells += chunk.num_cells();
      FoldChecksum(probs, &arm.checksum);
      if (a == 0) {
        reference = probs;
      } else {
        arm.mismatches += CountMismatches(probs, reference);
      }
      const int64_t bytes = arm.legacy != nullptr ? arm.legacy->ApproxBytes()
                                                  : arm.memo->bytes();
      arm.max_bytes = std::max(arm.max_bytes, bytes);
    }
  }

  // ---- Report the synthetic section ----
  const int64_t total_cells = arms[0].cells;
  eval::TableWriter writer({"Arm", "Cells/s", "Probe ns", "Bytes", "MaxBytes",
                            "B/unique", "Entries", "Evict", "Spill", "Mism"});
  double legacy_bytes = 0.0, succinct_bytes = 0.0;
  bool budget_ok = true;
  int64_t total_mismatches = 0;
  for (Arm& arm : arms) {
    int64_t final_bytes, entries, evictions = 0, spilled = 0;
    double probe_ns;
    core::ContentMemoStats stats;
    if (arm.legacy != nullptr) {
      final_bytes = arm.legacy->ApproxBytes();
      entries = arm.legacy->entries();
      probe_ns = arm.cells > 0
                     ? arm.lookup_seconds * 1e9 / static_cast<double>(arm.cells)
                     : 0.0;
      legacy_bytes = static_cast<double>(final_bytes);
    } else {
      stats = arm.memo->stats();
      final_bytes = stats.bytes;
      entries = stats.entries;
      evictions = stats.evictions;
      spilled = stats.spilled_segments;
      probe_ns = stats.lookups > 0
                     ? stats.probe_seconds * 1e9 /
                           static_cast<double>(stats.lookups)
                     : 0.0;
      if (arm.name == "succinct") {
        succinct_bytes = static_cast<double>(final_bytes);
      } else if (arm.max_bytes > budget_bytes) {
        budget_ok = false;
      }
    }
    total_mismatches += arm.mismatches;
    const double cps = arm.seconds > 0
                           ? static_cast<double>(arm.cells) / arm.seconds
                           : 0.0;
    const double per_unique =
        entries > 0 ? static_cast<double>(final_bytes) /
                          static_cast<double>(entries)
                    : 0.0;
    writer.AddRow({arm.name, FormatFixed(cps, 0), FormatFixed(probe_ns, 0),
                   std::to_string(final_bytes), std::to_string(arm.max_bytes),
                   FormatFixed(per_unique, 1), std::to_string(entries),
                   std::to_string(evictions), std::to_string(spilled),
                   std::to_string(arm.mismatches)});
  }
  writer.Print(std::cout);
  const double bytes_ratio =
      succinct_bytes > 0 ? legacy_bytes / succinct_bytes : 0.0;
  std::cout << "\ncells=" << total_cells << " uniques=" << total_uniques
            << " legacy/succinct bytes ratio=" << FormatFixed(bytes_ratio, 2)
            << "x\n";

  // ---- Real-table all-hit speed ratio (the serving steady state) ----
  struct DatasetRow {
    std::string dataset;
    int64_t cells = 0;
    double legacy_cps = 0.0;
    double succinct_cps = 0.0;
    bool match = false;
  };
  std::vector<DatasetRow> dataset_rows;
  if (!flags.GetBool("skip-datasets")) {
    std::vector<std::string> names = config.datasets;
    if (names.empty()) names = {"beers", "hospital", "tax"};
    for (const std::string& dataset : names) {
      const datagen::DatasetPair pair = MakePair(dataset, config);
      auto frame = data::PrepareData(pair.dirty, pair.clean);
      if (!frame.ok()) {
        std::cerr << dataset << ": PrepareData failed: "
                  << frame.status().message() << "\n";
        return 1;
      }
      const data::CharIndex chars = data::CharIndex::Build(*frame);
      const data::EncodedDataset all = data::EncodeCells(*frame, chars);

      core::ModelConfig ds_config;
      ds_config.vocab = all.vocab;
      ds_config.max_len = all.max_len;
      ds_config.n_attrs = all.n_attrs;
      ds_config.enriched = true;
      ds_config.seed = config.seed;
      core::ErrorDetectionModel ds_model(ds_config);
      ds_model.CalibrateBatchNorm(all, eval_batch);
      core::InferenceEngine ds_engine(ds_model, engine_options);

      DatasetRow row;
      row.dataset = dataset;
      row.cells = all.num_cells();

      // Populate both memos once, then time --reps all-hit sweeps with the
      // arms interleaved inside each rep: on a small table one sweep is
      // sub-millisecond, so a scheduler hiccup during one arm's window
      // would skew the ratio if the arms ran back to back. Best-of-reps
      // per arm absorbs the remaining noise.
      LegacyVerdictMemo legacy_memo(1 << 20);
      std::vector<float> legacy_probs;
      double ignored = 0.0;
      LegacySweep(&ds_engine, all, &legacy_memo, &legacy_probs, &ignored);

      // Mirror the serve plane: the bundle manifest pre-sizes the memo from
      // the table's unique-cell count; the cell count is an upper bound.
      core::ContentMemoOptions memo_options;
      memo_options.capacity = 1 << 20;
      memo_options.expected_entries = all.num_cells();
      core::ContentMemo succinct_memo(memo_options);
      std::vector<float> succinct_probs;
      ds_engine.PredictProbsMemoized(all, &succinct_memo, &succinct_probs);

      for (int rep = 0; rep < config.reps; ++rep) {
        {
          Stopwatch timer;
          LegacySweep(&ds_engine, all, &legacy_memo, &probs, &ignored);
          const double secs = timer.ElapsedSeconds();
          if (secs > 0) {
            row.legacy_cps = std::max(
                row.legacy_cps, static_cast<double>(all.num_cells()) / secs);
          }
        }
        {
          Stopwatch timer;
          ds_engine.PredictProbsMemoized(all, &succinct_memo, &probs);
          const double secs = timer.ElapsedSeconds();
          if (secs > 0) {
            row.succinct_cps = std::max(
                row.succinct_cps, static_cast<double>(all.num_cells()) / secs);
          }
        }
      }
      row.match = CountMismatches(succinct_probs, legacy_probs) == 0 &&
                  CountMismatches(probs, legacy_probs) == 0;
      dataset_rows.push_back(row);
    }

    std::cout << "\n";
    eval::TableWriter ds_writer(
        {"Dataset", "Cells", "Legacy c/s", "Succinct c/s", "Ratio", "Match"});
    for (const DatasetRow& row : dataset_rows) {
      const double ratio =
          row.legacy_cps > 0 ? row.succinct_cps / row.legacy_cps : 0.0;
      ds_writer.AddRow({row.dataset, std::to_string(row.cells),
                        FormatFixed(row.legacy_cps, 0),
                        FormatFixed(row.succinct_cps, 0),
                        FormatFixed(ratio, 2) + "x",
                        row.match ? "yes" : "NO"});
    }
    ds_writer.Print(std::cout);
  }

  const int64_t peak_rss = PeakRssBytes();
  const int64_t rss_cap_bytes =
      static_cast<int64_t>(flags.GetInt("rss-cap-mb")) * (1 << 20);
  std::cout << "\npeak RSS " << (peak_rss >> 20) << " MiB\n";

  // ---- Gates ----
  const double min_bytes_ratio = flags.GetDouble("min-bytes-ratio");
  const double min_speed_ratio = flags.GetDouble("min-speed-ratio");
  bool parity_ok = total_mismatches == 0;
  bool ratio_ok = bytes_ratio >= min_bytes_ratio;
  bool speed_ok = true;
  for (const DatasetRow& row : dataset_rows) {
    if (!row.match) parity_ok = false;
    if (row.legacy_cps > 0 &&
        row.succinct_cps / row.legacy_cps < min_speed_ratio) {
      speed_ok = false;
    }
  }
  const bool rss_ok = rss_cap_bytes <= 0 || peak_rss <= rss_cap_bytes;

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("rows").Int(spec.rows);
    json.Key("cols").Int(spec.cols);
    json.Key("uniques_per_col").Int(spec.uniques_per_col);
    json.Key("chunk_rows").Int(chunk_rows);
    json.Key("budget_bytes").Int(budget_bytes);
    json.Key("seed").Int(static_cast<int64_t>(config.seed));
    json.Key("cells").Int(total_cells);
    json.Key("unique_cells").Int(total_uniques);
    json.Key("arms").BeginArray();
    for (Arm& arm : arms) {
      json.BeginObject();
      json.Key("arm").String(arm.name);
      json.Key("cells_per_sec")
          .Number(arm.seconds > 0
                      ? static_cast<double>(arm.cells) / arm.seconds
                      : 0.0);
      json.Key("sweep_seconds").Number(arm.seconds);
      if (arm.legacy != nullptr) {
        const int64_t bytes = arm.legacy->ApproxBytes();
        const int64_t entries = arm.legacy->entries();
        json.Key("bytes").Int(bytes);
        json.Key("entries").Int(entries);
        json.Key("bytes_per_unique")
            .Number(entries > 0 ? static_cast<double>(bytes) /
                                      static_cast<double>(entries)
                                : 0.0);
        json.Key("probe_ns_per_cell")
            .Number(arm.cells > 0 ? arm.lookup_seconds * 1e9 /
                                        static_cast<double>(arm.cells)
                                  : 0.0);
      } else {
        const core::ContentMemoStats stats = arm.memo->stats();
        json.Key("bytes").Int(stats.bytes);
        json.Key("entries").Int(stats.entries);
        json.Key("bytes_per_unique")
            .Number(stats.entries > 0
                        ? static_cast<double>(stats.bytes) /
                              static_cast<double>(stats.entries)
                        : 0.0);
        json.Key("probe_ns_per_cell")
            .Number(stats.lookups > 0
                        ? stats.probe_seconds * 1e9 /
                              static_cast<double>(stats.lookups)
                        : 0.0);
        json.Key("hits").Int(stats.hits);
        json.Key("bloom_negatives").Int(stats.bloom_negatives);
        json.Key("bloom_fps").Int(stats.bloom_fps);
        json.Key("bloom_fp_rate")
            .Number(stats.lookups > stats.bloom_negatives
                        ? static_cast<double>(stats.bloom_fps) /
                              static_cast<double>(stats.lookups -
                                                  stats.bloom_negatives)
                        : 0.0);
        json.Key("evictions").Int(stats.evictions);
        json.Key("evicted_entries").Int(stats.evicted_entries);
        json.Key("spilled_segments").Int(stats.spilled_segments);
        json.Key("spilled_entries").Int(stats.spilled_entries);
        json.Key("spill_hits").Int(stats.spill_hits);
        json.Key("spill_failures").Int(stats.spill_failures);
      }
      json.Key("max_bytes").Int(arm.max_bytes);
      json.Key("mismatches").Int(arm.mismatches);
      char hex[32];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(arm.checksum));
      json.Key("prob_checksum").String(hex);
      json.EndObject();
    }
    json.EndArray();
    json.Key("bytes_ratio").Number(bytes_ratio);
    json.Key("datasets").BeginArray();
    for (const DatasetRow& row : dataset_rows) {
      json.BeginObject();
      json.Key("dataset").String(row.dataset);
      json.Key("cells").Int(row.cells);
      json.Key("legacy_cells_per_sec").Number(row.legacy_cps);
      json.Key("succinct_cells_per_sec").Number(row.succinct_cps);
      json.Key("speed_ratio")
          .Number(row.legacy_cps > 0 ? row.succinct_cps / row.legacy_cps
                                     : 0.0);
      json.Key("predictions_match").Bool(row.match);
      json.EndObject();
    }
    json.EndArray();
    json.Key("peak_rss_bytes").Int(peak_rss);
    json.Key("gates").BeginObject();
    json.Key("parity_ok").Bool(parity_ok);
    json.Key("bytes_ratio_ok").Bool(ratio_ok);
    json.Key("budget_ok").Bool(budget_ok);
    json.Key("speed_ok").Bool(speed_ok);
    json.Key("rss_ok").Bool(rss_ok);
    json.EndObject();
    json.EndObject();
    out << "\n";
    std::cout << "wrote " << config.json_path << "\n";
  }

  if (!parity_ok) std::cout << "GATE: verdict mismatch across memo arms\n";
  if (!ratio_ok) {
    std::cout << "GATE: bytes ratio " << FormatFixed(bytes_ratio, 2)
              << "x below " << FormatFixed(min_bytes_ratio, 2) << "x\n";
  }
  if (!budget_ok) std::cout << "GATE: budgeted arm exceeded --budget-mb\n";
  if (!speed_ok) {
    std::cout << "GATE: succinct all-hit sweep slower than "
              << FormatFixed(min_speed_ratio, 2) << "x legacy\n";
  }
  if (!rss_ok) std::cout << "GATE: peak RSS above --rss-cap-mb\n";
  const bool ok = parity_ok && ratio_ok && budget_ok && speed_ok && rss_ok;
  if (!ok && flags.GetBool("gate")) return 1;
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
