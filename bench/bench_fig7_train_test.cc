// Regenerates the paper's Figure 7: average train- vs test-accuracy per
// epoch for ETSB-RNN (with 95% confidence intervals), plus per-repetition
// markers for the epoch with the lowest train loss (green dots = train
// accuracy at that epoch, blue triangles = test accuracy) — the paper's
// overfitting analysis.

#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int BestEpoch(const std::vector<core::EpochStats>& history) {
  int best = 0;
  for (size_t e = 1; e < history.size(); ++e) {
    if (history[e].train_loss < history[static_cast<size_t>(best)].train_loss) {
      best = static_cast<int>(e);
    }
  }
  return best;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  flags.AddInt("eval-cells", 1500,
               "test cells sampled for the per-epoch accuracy sweep");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_fig7_train_test");

  std::cout << "=== Figure 7: ETSB-RNN train- vs test-accuracy per epoch "
            << "(" << config.reps << " repetitions, CI95) ===\n\n";

  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[fig7] " << dataset << "...\n";
    eval::RunnerOptions options = MakeRunnerOptions(config, "etsb");
    options.detector.trainer.track_test_accuracy = true;
    options.detector.trainer.test_eval_max_cells = flags.GetInt("eval-cells");
    const eval::RepeatedResult result =
        eval::RunRepeatedDetector(pair, options);

    eval::PrintCurve("Fig7 " + dataset + " ETSB-RNN train-accuracy",
                     eval::AverageTrainAccuracyCurve(result), std::cout);
    eval::PrintCurve("Fig7 " + dataset + " ETSB-RNN test-accuracy",
                     eval::AverageTestAccuracyCurve(result), std::cout);
    std::cout << "# best-train-loss epochs (train acc / test acc): ";
    for (size_t rep = 0; rep < result.histories.size(); ++rep) {
      const auto& history = result.histories[rep];
      const int best = BestEpoch(history);
      const auto& stats = history[static_cast<size_t>(best)];
      std::cout << (rep > 0 ? ", " : "") << best << " ("
                << FormatFixed(stats.train_accuracy, 3) << "/"
                << FormatFixed(stats.test_accuracy, 3) << ")";
    }
    std::cout << "\n";
    // Overfitting verdict, as §5.4 reads the figure.
    const auto train_curve = eval::AverageTrainAccuracyCurve(result);
    const auto test_curve = eval::AverageTestAccuracyCurve(result);
    if (!train_curve.empty() && !test_curve.empty()) {
      const double gap = train_curve.back().mean - test_curve.back().mean;
      std::cout << "# final train/test gap: " << FormatFixed(gap, 3)
                << (gap > 0.15 ? "  (large gap — model struggles here, like "
                                 "Flights in the paper)"
                               : "  (no critical overfitting)")
                << "\n\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
