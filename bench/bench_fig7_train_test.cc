// Regenerates the paper's Figure 7: average train- vs test-accuracy per
// epoch for ETSB-RNN (with 95% confidence intervals), plus per-repetition
// markers for the epoch with the lowest train loss (green dots = train
// accuracy at that epoch, blue triangles = test accuracy) — the paper's
// overfitting analysis. One dataset = one scheduler experiment; JSON
// mirrors the printed curves.

#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

void WriteCurveJson(JsonWriter* json, const char* name,
                    const std::vector<eval::CurvePoint>& curve) {
  json->Key(name).BeginArray();
  for (const eval::CurvePoint& pt : curve) {
    json->BeginObject();
    json->Key("epoch").Int(pt.epoch);
    json->Key("mean").Number(pt.mean);
    json->Key("ci95").Number(pt.ci95);
    json->EndObject();
  }
  json->EndArray();
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "fig7_train_test.json");
  flags.AddInt("eval-cells", 1500,
               "test cells sampled for the per-epoch accuracy sweep");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_fig7_train_test");

  std::cout << "=== Figure 7: ETSB-RNN train- vs test-accuracy per epoch "
            << "(" << config.reps << " repetitions, CI95) ===\n\n";

  const std::vector<datagen::DatasetPair> pairs = MakeAllPairs(config);
  std::unique_ptr<eval::ArtifactCache> cache = MakeCache(config);
  eval::Scheduler scheduler(MakeSchedulerOptions(config, cache.get()));
  std::vector<eval::Scheduler::ExperimentId> ids;
  for (const datagen::DatasetPair& pair : pairs) {
    eval::RunnerOptions options = MakeRunnerOptions(config, "etsb");
    options.detector.trainer.track_test_accuracy = true;
    options.detector.trainer.test_eval_max_cells = flags.GetInt("eval-cells");
    ids.push_back(scheduler.SubmitDetector(pair, options));
  }
  scheduler.RunAll();

  std::ofstream json_out;
  std::unique_ptr<JsonWriter> json;
  if (!config.json_path.empty()) {
    json_out.open(config.json_path);
    json = std::make_unique<JsonWriter>(json_out);
    json->BeginObject();
    json->Key("figure").String("fig7");
    json->Key("series").BeginArray();
  }

  for (const eval::Scheduler::ExperimentId id : ids) {
    const eval::RepeatedResult result = scheduler.Take(id);
    const auto train_curve = eval::AverageTrainAccuracyCurve(result);
    const auto test_curve = eval::AverageTestAccuracyCurve(result);

    eval::PrintCurve("Fig7 " + result.dataset + " ETSB-RNN train-accuracy",
                     train_curve, std::cout);
    eval::PrintCurve("Fig7 " + result.dataset + " ETSB-RNN test-accuracy",
                     test_curve, std::cout);
    std::cout << "# best-train-loss epochs (train acc / test acc): ";
    for (size_t rep = 0; rep < result.histories.size(); ++rep) {
      const auto& history = result.histories[rep];
      const int best = BestEpoch(history);
      const auto& stats = history[static_cast<size_t>(best)];
      std::cout << (rep > 0 ? ", " : "") << best << " ("
                << FormatFixed(stats.train_accuracy, 3) << "/"
                << FormatFixed(stats.test_accuracy, 3) << ")";
    }
    std::cout << "\n";
    // Overfitting verdict, as §5.4 reads the figure.
    double gap = 0.0;
    if (!train_curve.empty() && !test_curve.empty()) {
      gap = train_curve.back().mean - test_curve.back().mean;
      std::cout << "# final train/test gap: " << FormatFixed(gap, 3)
                << (gap > 0.15 ? "  (large gap — model struggles here, like "
                                 "Flights in the paper)"
                               : "  (no critical overfitting)")
                << "\n\n";
    }

    if (json != nullptr) {
      json->BeginObject();
      json->Key("dataset").String(result.dataset);
      json->Key("system").String(result.system);
      WriteCurveJson(json.get(), "train_accuracy", train_curve);
      WriteCurveJson(json.get(), "test_accuracy", test_curve);
      json->Key("selected_epochs").BeginArray();
      for (const auto& history : result.histories) {
        const int best = BestEpoch(history);
        const auto& stats = history[static_cast<size_t>(best)];
        json->BeginObject();
        json->Key("epoch").Int(best);
        json->Key("train_accuracy").Number(stats.train_accuracy);
        json->Key("test_accuracy").Number(stats.test_accuracy);
        json->EndObject();
      }
      json->EndArray();
      json->Key("final_gap").Number(gap);
      json->EndObject();
    }
  }
  PrintSchedulerSummary(scheduler, std::cout);

  if (json != nullptr) {
    json->EndArray();
    json->EndObject();
    json_out << "\n";
    std::cout << "JSON written to " << config.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
