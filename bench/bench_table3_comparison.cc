// Regenerates the paper's Table 3 (precision/recall/F1 of Raha, Rotom,
// Rotom+SSL, TSB-RNN and ETSB-RNN on the six datasets, with standard
// deviations over repeated runs) and Table 4 (average F1 and S.D. across
// datasets, without and with Flights).
//
// The RNN systems use 20 labeled tuples selected by DiverSet; the
// Rotom-style baselines use 200 labeled cells, mirroring the comparison
// protocol of §5.3. All (dataset, system, repetition) cells run through
// one eval::Scheduler, so the grid fans out over every core and warm
// re-runs are served from the artifact cache.

#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "table3_metrics.json");
  flags.AddInt("rotom-cells", 200,
               "labeled cells for the Rotom baselines (paper: 200)");
  flags.AddString("out", "table3_metrics.csv",
                  "CSV file for raw per-run metrics (read by "
                  "bench_table4_aggregate); empty = don't write");
  flags.AddBool("skip-baselines", false,
                "run only TSB-RNN and ETSB-RNN (faster)");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table3_comparison");
  const int rotom_cells = flags.GetInt("rotom-cells");
  const bool skip_baselines = flags.GetBool("skip-baselines");

  std::cout << "=== Table 3: Comparison between the different models ("
            << config.n_label_tuples << " labeled tuples, " << config.reps
            << " repetitions, " << config.epochs << " epochs) ===\n\n";

  const std::vector<datagen::DatasetPair> pairs = MakeAllPairs(config);
  std::unique_ptr<eval::ArtifactCache> cache = MakeCache(config);
  eval::Scheduler scheduler(MakeSchedulerOptions(config, cache.get()));

  // (system name, experiment id) in Table 3 row order.
  std::vector<std::pair<std::string, eval::Scheduler::ExperimentId>> cells;
  for (const datagen::DatasetPair& pair : pairs) {
    for (auto& cell :
         SubmitComparison(&scheduler, pair, config, rotom_cells,
                          skip_baselines)) {
      cells.push_back(std::move(cell));
    }
  }
  scheduler.RunAll();

  eval::TableWriter writer({"System", "Dataset", "P", "R", "F1"});
  F1Map f1_map;
  std::vector<eval::RepeatedResult> results;
  results.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    eval::RepeatedResult result = scheduler.Take(cells[i].second);
    result.system = cells[i].first;
    writer.AddRow({result.system, result.dataset,
                   eval::Fmt2(result.precision.mean),
                   eval::Fmt2(result.recall.mean),
                   eval::Fmt2(result.f1.mean)});
    writer.AddRow({"  S.D.", "", eval::Fmt2(result.precision.stddev),
                   eval::Fmt2(result.recall.stddev),
                   eval::Fmt2(result.f1.stddev)});
    AddRunsToF1Map(&f1_map, result);
    results.push_back(std::move(result));
  }
  writer.Print(std::cout);

  std::cout << "\n=== Table 4: Average F1-score (AVG) and Standard "
               "Deviation (S.D.) across datasets ===\n\n";
  PrintAggregateF1Table(f1_map, std::cout);
  PrintSchedulerSummary(scheduler, std::cout);

  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "system,dataset,rep,precision,recall,f1\n";
    for (const eval::RepeatedResult& result : results) {
      for (size_t rep = 0; rep < result.runs.size(); ++rep) {
        out << result.system << "," << result.dataset << "," << rep << ","
            << result.runs[rep].precision << "," << result.runs[rep].recall
            << "," << result.runs[rep].f1 << "\n";
      }
    }
    std::cout << "Raw metrics written to " << out_path << "\n";
  }
  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("table").String("table3");
    json.Key("reps").Int(config.reps);
    json.Key("epochs").Int(config.epochs);
    json.Key("results").BeginArray();
    for (const eval::RepeatedResult& result : results) {
      WriteResultJson(&json, result);
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "JSON written to " << config.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
