// Regenerates the paper's Table 3 (precision/recall/F1 of Raha, Rotom,
// Rotom+SSL, TSB-RNN and ETSB-RNN on the six datasets, with standard
// deviations over repeated runs) and Table 4 (average F1 and S.D. across
// datasets, without and with Flights).
//
// The RNN systems use 20 labeled tuples selected by DiverSet; the
// Rotom-style baselines use 200 labeled cells, mirroring the comparison
// protocol of §5.3.

#include <fstream>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "eval/report.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

struct SystemResult {
  std::string system;
  std::map<std::string, eval::RepeatedResult> per_dataset;
};

void PrintTable4(const std::vector<SystemResult>& systems) {
  std::cout << "\n=== Table 4: Average F1-score (AVG) and Standard "
               "Deviation (S.D.) across datasets ===\n\n";
  eval::TableWriter writer({"Name", "AVG w/o Flights", "S.D. w/o Flights",
                            "AVG with Flights", "S.D. with Flights"});
  for (const SystemResult& sys : systems) {
    std::vector<double> without_flights;
    std::vector<double> with_flights;
    for (const auto& [dataset, result] : sys.per_dataset) {
      with_flights.push_back(result.f1.mean);
      if (dataset != "flights") without_flights.push_back(result.f1.mean);
    }
    writer.AddRow({sys.system, eval::Fmt2(Mean(without_flights)),
                   eval::Fmt2(SampleStdDev(without_flights)),
                   eval::Fmt2(Mean(with_flights)),
                   eval::Fmt2(SampleStdDev(with_flights))});
  }
  writer.Print(std::cout);
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  flags.AddInt("rotom-cells", 200,
               "labeled cells for the Rotom baselines (paper: 200)");
  flags.AddString("out", "table3_metrics.csv",
                  "CSV file for raw per-run metrics (read by "
                  "bench_table4_aggregate); empty = don't write");
  flags.AddBool("skip-baselines", false,
                "run only TSB-RNN and ETSB-RNN (faster)");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table3_comparison");
  const int rotom_cells = flags.GetInt("rotom-cells");
  const bool skip_baselines = flags.GetBool("skip-baselines");

  std::cout << "=== Table 3: Comparison between the different models ("
            << config.n_label_tuples << " labeled tuples, " << config.reps
            << " repetitions, " << config.epochs << " epochs) ===\n\n";

  std::vector<SystemResult> systems;
  if (!skip_baselines) {
    systems.push_back({"Raha", {}});
    systems.push_back({"Rotom", {}});
    systems.push_back({"Rotom+SSL", {}});
  }
  systems.push_back({"TSB-RNN", {}});
  systems.push_back({"ETSB-RNN", {}});

  eval::TableWriter writer({"System", "Dataset", "P", "R", "F1"});
  Stopwatch total_timer;
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[table3] " << dataset << " (" << pair.dirty.num_rows()
              << " rows)...\n";

    for (SystemResult& sys : systems) {
      eval::RepeatedResult result;
      if (sys.system == "Raha") {
        result = eval::RunRepeatedRaha(pair, config.reps,
                                       config.n_label_tuples, config.seed);
      } else if (sys.system == "Rotom") {
        result = eval::RunRepeatedRotom(pair, config.reps, rotom_cells,
                                        /*ssl=*/false, config.seed);
      } else if (sys.system == "Rotom+SSL") {
        result = eval::RunRepeatedRotom(pair, config.reps, rotom_cells,
                                        /*ssl=*/true, config.seed);
      } else {
        const std::string model =
            sys.system == "TSB-RNN" ? "tsb" : "etsb";
        result = eval::RunRepeatedDetector(pair,
                                           MakeRunnerOptions(config, model));
        result.system = sys.system;
      }
      writer.AddRow({sys.system, dataset, eval::Fmt2(result.precision.mean),
                     eval::Fmt2(result.recall.mean),
                     eval::Fmt2(result.f1.mean)});
      writer.AddRow({"  S.D.", "", eval::Fmt2(result.precision.stddev),
                     eval::Fmt2(result.recall.stddev),
                     eval::Fmt2(result.f1.stddev)});
      sys.per_dataset[dataset] = std::move(result);
    }
  }
  writer.Print(std::cout);
  PrintTable4(systems);
  std::cout << "\nTotal wall-clock: "
            << FormatFixed(total_timer.ElapsedSeconds(), 1) << " s\n";

  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "system,dataset,rep,precision,recall,f1\n";
    for (const SystemResult& sys : systems) {
      for (const auto& [dataset, result] : sys.per_dataset) {
        for (size_t rep = 0; rep < result.runs.size(); ++rep) {
          out << sys.system << "," << dataset << "," << rep << ","
              << result.runs[rep].precision << "," << result.runs[rep].recall
              << "," << result.runs[rep].f1 << "\n";
        }
      }
    }
    std::cout << "Raw metrics written to " << out_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
