// Low-precision inference A/B: throughput and accuracy of the fp32 / bf16 /
// int8 kernel sets on the paper generators, with a CI95 accuracy gate.
//
// Per dataset and repetition (seeds config.seed + r): train a detector with
// the paper protocol (ErrorDetector), then
//   (a) sweep the whole table at each precision through the inference
//       engine and score F1 on the test cells (the paper's evaluation
//       protocol, identical split per repetition across precisions);
//   (b) time an unmemoized sweep over the first --timing-cells cells at
//       each precision — pure forward throughput, undiluted by the
//       memoizer's hashing (which all precisions share equally).
// The fp32 sweep is additionally checked bit-for-bit against the
// DetectionReport's own predictions: the quantized path must not have
// perturbed the reference numerics.
//
// The accuracy gate treats fp32 repetition-to-repetition variance (training
// is seed-sensitive; the kernels are deterministic) as the noise floor: a
// precision passes when |mean F1(precision) - mean F1(fp32)| lies within
// 1.96 * sd(F1 fp32) — the 95% band of the fp32 run distribution. With
// --gate the binary exits nonzero on any band violation (the CI job).
// Needs --reps >= 2, otherwise the band is undefined and the gate fails.
//
// Writes BENCH_precision.json: per dataset and precision the per-rep F1
// values, mean/sd, timing cells/sec, speedup vs fp32, recurrent-stack
// weight bytes, and the v1 vs v2 (quantized) bundle checkpoint sizes.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "core/detector.h"
#include "core/inference.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "nn/quant.h"
#include "serve/bundle.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

constexpr nn::Precision kPrecisions[] = {
    nn::Precision::kFp32, nn::Precision::kBf16, nn::Precision::kInt8};

struct PrecisionStats {
  std::vector<double> f1;            ///< one per repetition.
  std::vector<double> cells_per_sec; ///< one per (repetition x timing rep).
  int64_t weight_bytes = 0;          ///< recurrent-stack weights at this tier.
  bool fp32_match = true;            ///< fp32 only: sweep == report.predicted.
};

struct DatasetResult {
  std::string dataset;
  int64_t cells = 0;
  int64_t unique_cells = 0;
  int64_t train_cells = 0;
  int64_t bundle_v1_bytes = 0;
  int64_t bundle_v2_bytes = 0;
  PrecisionStats per_precision[3];
};

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Sample standard deviation (n - 1); 0 when underdetermined.
double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/// F1 on the test cells (cells of tuples the sampler did not label) — the
/// same protocol as ErrorDetector's own report.test_metrics.
double TestF1(const data::EncodedDataset& all,
              const std::vector<uint8_t>& predicted,
              const std::vector<int32_t>& truth,
              const std::unordered_set<int64_t>& labeled_rows) {
  eval::Confusion confusion;
  for (int64_t i = 0; i < all.num_cells(); ++i) {
    if (labeled_rows.count(all.row_ids[static_cast<size_t>(i)]) > 0) continue;
    confusion.Add(predicted[static_cast<size_t>(i)],
                  truth[static_cast<size_t>(i)]);
  }
  return eval::Metrics::From(confusion).f1;
}

/// Sum of the recurrent-stack weight bytes resident at each precision tier:
/// fp32 from the wx/wh parameters themselves, int8/bf16 from the exported
/// shadow entries (which include the int8 per-row scales).
void WeightBytes(const core::ErrorDetectionModel& model, int64_t* fp32,
                 int64_t* bf16, int64_t* int8) {
  *fp32 = *bf16 = *int8 = 0;
  for (const nn::Parameter* p : model.ConstParams()) {
    const std::string& n = p->name;
    if (n.find("rnn/") == std::string::npos) continue;
    const size_t slash = n.rfind('/');
    const std::string leaf = n.substr(slash + 1);
    if (leaf != "wx" && leaf != "wh") continue;
    *fp32 += static_cast<int64_t>(p->value.size()) * 4;
  }
  std::vector<nn::TypedEntry> extras;
  model.ExportQuantized(&extras);
  for (const nn::TypedEntry& e : extras) {
    if (e.name.rfind("__bf16/", 0) == 0) {
      *bf16 += static_cast<int64_t>(e.bytes.size());
    } else {
      *int8 += static_cast<int64_t>(e.bytes.size());
    }
  }
}

int64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_precision.json");
  flags.AddInt("eval-batch", 256, "cells per forward batch");
  flags.AddInt("timing-cells", 8192,
               "cells per unmemoized timing sweep (capped at the table)");
  flags.AddInt("timing-reps", 2, "timing sweeps per trained model");
  flags.AddBool("gate", false,
                "exit nonzero when a quantized F1 leaves the fp32 CI95 band");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_precision_throughput");
  const int eval_batch = flags.GetInt("eval-batch");
  const int timing_cells = std::max(1, flags.GetInt("timing-cells"));
  const int timing_reps = std::max(1, flags.GetInt("timing-reps"));
  const bool gate = flags.GetBool("gate");

  std::cout << "=== Precision A/B: fp32 vs bf16 vs int8 (reps=" << config.reps
            << ", timing_cells=" << timing_cells << ") ===\n\n";

  std::vector<DatasetResult> results;
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    DatasetResult result;
    result.dataset = dataset;

    for (int rep = 0; rep < config.reps; ++rep) {
      core::DetectorOptions opts;
      opts.seed = config.seed + static_cast<uint64_t>(rep);
      opts.n_label_tuples = config.n_label_tuples;
      opts.trainer.epochs = config.epochs;
      opts.trainer.eval_batch = eval_batch;
      core::ErrorDetector detector(opts);
      core::TrainedDetector trained;
      auto report = detector.Run(pair.dirty, pair.clean, &trained);
      if (!report.ok()) {
        std::cerr << dataset << " rep " << rep
                  << ": detector failed: " << report.status().message()
                  << "\n";
        return 1;
      }

      // The detector's own frame, re-derived (PrepareData and the
      // dictionary are deterministic), so sweeps see the exact inputs that
      // produced report->predicted.
      auto frame = data::PrepareData(pair.dirty, pair.clean, opts.prepare);
      if (!frame.ok()) {
        std::cerr << dataset << ": PrepareData failed\n";
        return 1;
      }
      const data::CharIndex chars = data::CharIndex::Build(*frame);
      const data::EncodedDataset all = data::EncodeCells(*frame, chars);
      const std::unordered_set<int64_t> labeled_rows(
          report->labeled_tuples.begin(), report->labeled_tuples.end());
      result.cells = all.num_cells();
      result.train_cells = report->train_cells;

      const core::ErrorDetectionModel& model = *trained.model;
      for (int p = 0; p < 3; ++p) {
        PrecisionStats& stats = result.per_precision[p];

        // (a) Accuracy: full-table memoized sweep at this precision.
        core::InferenceOptions accuracy_options;
        accuracy_options.eval_batch = eval_batch;
        accuracy_options.precision = kPrecisions[p];
        core::InferenceEngine engine(model, accuracy_options);
        std::vector<uint8_t> labels;
        engine.Predict(all, &labels);
        result.unique_cells = engine.stats().unique_cells;
        stats.f1.push_back(TestF1(all, labels, report->truth, labeled_rows));
        if (kPrecisions[p] == nn::Precision::kFp32 &&
            labels != report->predicted) {
          stats.fp32_match = false;
        }

        // (b) Throughput: unmemoized sweeps over a fixed cell prefix.
        std::vector<int64_t> timing_ids(
            static_cast<size_t>(std::min<int64_t>(timing_cells, all.num_cells())));
        for (size_t i = 0; i < timing_ids.size(); ++i) {
          timing_ids[i] = static_cast<int64_t>(i);
        }
        core::InferenceOptions timing_options = accuracy_options;
        timing_options.memoize = false;
        core::InferenceEngine timer(model, timing_options);
        for (int t = 0; t < timing_reps; ++t) {
          std::vector<float> probs;
          timer.PredictProbs(all, timing_ids, &probs);
          const core::InferenceStats& s = timer.stats();
          stats.cells_per_sec.push_back(
              s.seconds > 0 ? static_cast<double>(s.cells) / s.seconds : 0.0);
        }
      }

      if (rep == 0) {
        WeightBytes(model, &result.per_precision[0].weight_bytes,
                    &result.per_precision[1].weight_bytes,
                    &result.per_precision[2].weight_bytes);
        const std::string tmp =
            (std::filesystem::temp_directory_path() /
             ("birnn_precision_bundle_" + dataset))
                .string();
        serve::BundleSaveOptions v1;
        v1.include_quantized = false;
        if (serve::SaveDetectorBundle(trained, tmp, v1).ok()) {
          result.bundle_v1_bytes = FileBytes(tmp + "/weights.ckpt");
        }
        if (serve::SaveDetectorBundle(trained, tmp).ok()) {
          result.bundle_v2_bytes = FileBytes(tmp + "/weights.ckpt");
        }
        std::error_code ec;
        std::filesystem::remove_all(tmp, ec);
      }
      std::cerr << "[precision] " << dataset << " rep " << rep << " f1 fp32="
                << FormatFixed(result.per_precision[0].f1.back(), 4)
                << " bf16="
                << FormatFixed(result.per_precision[1].f1.back(), 4)
                << " int8="
                << FormatFixed(result.per_precision[2].f1.back(), 4) << "\n";
    }
    results.push_back(std::move(result));
  }

  // Report + gate. The fp32 CI95 band needs a spread estimate: sd over at
  // least two repetitions.
  eval::TableWriter writer({"Dataset", "Precision", "F1 mean", "F1 sd",
                            "dF1 vs fp32", "CI95 band", "Gate", "Cells/s",
                            "Speedup", "Weights"});
  int gate_failures = 0;
  const bool band_defined = config.reps >= 2;
  for (const DatasetResult& result : results) {
    const double f1_fp32 = Mean(result.per_precision[0].f1);
    const double band = 1.96 * StdDev(result.per_precision[0].f1);
    const double fp32_cps = Mean(result.per_precision[0].cells_per_sec);
    for (int p = 0; p < 3; ++p) {
      const PrecisionStats& stats = result.per_precision[p];
      const double f1 = Mean(stats.f1);
      const double delta = f1 - f1_fp32;
      const double cps = Mean(stats.cells_per_sec);
      const bool in_band =
          band_defined && std::fabs(delta) <= band + 1e-12;
      const bool gated = p != 0;  // fp32 is the reference, not gated.
      if (gated && !in_band) ++gate_failures;
      if (p == 0 && !stats.fp32_match) {
        std::cout << "WARNING: " << result.dataset
                  << ": fp32 sweep diverged from the detector report — "
                     "reference numerics perturbed\n";
        ++gate_failures;
      }
      writer.AddRow(
          {p == 0 ? result.dataset : "", nn::PrecisionName(kPrecisions[p]),
           FormatFixed(f1, 4), FormatFixed(StdDev(stats.f1), 4),
           gated ? FormatFixed(delta, 4) : "-",
           gated ? FormatFixed(band, 4) : "-",
           !gated ? "-" : (in_band ? "pass" : "FAIL"), FormatFixed(cps, 0),
           FormatFixed(fp32_cps > 0 ? cps / fp32_cps : 0.0, 2) + "x",
           std::to_string(stats.weight_bytes)});
    }
  }
  writer.Print(std::cout);
  if (!band_defined) {
    std::cout << "\nWARNING: --reps < 2, fp32 CI95 band undefined — every "
                 "gate fails\n";
  }

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("reps").Int(config.reps);
    json.Key("epochs").Int(config.epochs);
    json.Key("scale").Number(config.scale);
    json.Key("seed").Int(static_cast<int64_t>(config.seed));
    json.Key("eval_batch").Int(eval_batch);
    json.Key("timing_cells").Int(timing_cells);
    json.Key("timing_reps").Int(timing_reps);
    json.Key("datasets").BeginArray();
    for (const DatasetResult& result : results) {
      const double f1_fp32 = Mean(result.per_precision[0].f1);
      const double band = 1.96 * StdDev(result.per_precision[0].f1);
      const double fp32_cps = Mean(result.per_precision[0].cells_per_sec);
      json.BeginObject();
      json.Key("dataset").String(result.dataset);
      json.Key("cells").Int(result.cells);
      json.Key("unique_cells").Int(result.unique_cells);
      json.Key("train_cells").Int(result.train_cells);
      json.Key("fp32_ci95_band").Number(band);
      json.Key("bundle_v1_ckpt_bytes").Int(result.bundle_v1_bytes);
      json.Key("bundle_v2_ckpt_bytes").Int(result.bundle_v2_bytes);
      json.Key("precisions").BeginArray();
      for (int p = 0; p < 3; ++p) {
        const PrecisionStats& stats = result.per_precision[p];
        const double f1 = Mean(stats.f1);
        const double cps = Mean(stats.cells_per_sec);
        json.BeginObject();
        json.Key("precision").String(nn::PrecisionName(kPrecisions[p]));
        json.Key("f1_runs").BeginArray();
        for (const double v : stats.f1) json.Number(v);
        json.EndArray();
        json.Key("f1_mean").Number(f1);
        json.Key("f1_sd").Number(StdDev(stats.f1));
        json.Key("f1_delta_vs_fp32").Number(f1 - f1_fp32);
        json.Key("within_ci95").Bool(band_defined &&
                                     std::fabs(f1 - f1_fp32) <= band + 1e-12);
        json.Key("cells_per_sec").Number(cps);
        json.Key("speedup_vs_fp32").Number(fp32_cps > 0 ? cps / fp32_cps
                                                        : 0.0);
        json.Key("weight_bytes").Int(stats.weight_bytes);
        if (p == 0) json.Key("matches_report").Bool(stats.fp32_match);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "\nwrote " << config.json_path << "\n";
  }

  if (gate && gate_failures > 0) {
    std::cout << "\nprecision gate: " << gate_failures << " failure(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
