// Ablation for §4.3: the architecture choices of Fig. 5 — 64 RNN units,
// two stacked levels, bidirectionality, and the two ETSB enrichment
// branches (attribute metadata, length_norm). Varies one axis at a time
// against the paper's configuration on a subset of datasets.

#include <iostream>

#include "bench_common.h"
#include "eval/report.h"

namespace birnn::bench {
namespace {

struct Variant {
  std::string name;
  void (*apply)(core::DetectorOptions*);
};

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_ablation_architecture");
  // Two contrasting datasets by default: one typo-driven, one format-driven.
  if (config.datasets.empty()) config.datasets = {"hospital", "beers"};

  const std::vector<Variant> variants{
      {"paper (etsb,64u,2s,bi)", [](core::DetectorOptions*) {}},
      {"units=16",
       [](core::DetectorOptions* o) { o->units = 16; }},
      {"units=32",
       [](core::DetectorOptions* o) { o->units = 32; }},
      {"stacks=1",
       [](core::DetectorOptions* o) { o->stacks = 1; }},
      {"unidirectional",
       [](core::DetectorOptions* o) { o->bidirectional = false; }},
      {"no attr branch",
       [](core::DetectorOptions* o) { o->use_attr_branch = false; }},
      {"no length branch",
       [](core::DetectorOptions* o) { o->use_length_branch = false; }},
      {"tsb (no enrichment)",
       [](core::DetectorOptions* o) { o->model = "tsb"; }},
  };

  std::cout << "=== Ablation: architecture choices of Fig. 5 ("
            << config.reps << " reps, " << config.epochs << " epochs) ===\n\n";
  eval::TableWriter writer({"Dataset", "Variant", "P", "R", "F1", "F1 S.D."});
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[architecture] " << dataset << "...\n";
    for (const Variant& variant : variants) {
      eval::RunnerOptions options = MakeRunnerOptions(config, "etsb");
      variant.apply(&options.detector);
      const eval::RepeatedResult result =
          eval::RunRepeatedDetector(pair, options);
      writer.AddRow({dataset, variant.name, eval::Fmt2(result.precision.mean),
                     eval::Fmt2(result.recall.mean),
                     eval::Fmt2(result.f1.mean),
                     eval::Fmt2(result.f1.stddev)});
    }
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
