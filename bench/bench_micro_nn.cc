// Microbenchmarks of the neural-network substrate (google-benchmark):
// dense kernels, RNN steps, full model forward/backward, inference
// throughput, and the data-preparation / sampling pipeline stages.

#include <benchmark/benchmark.h>

#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "nn/graph.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "sampling/sampler.h"
#include "util/rng.h"

namespace birnn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n);
  nn::Tensor b(n, n);
  nn::NormalInit(&a, 1.0f, &rng);
  nn::NormalInit(&b, 1.0f, &rng);
  nn::Tensor c;
  for (auto _ : state) {
    nn::MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_RnnStepForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::RnnCell cell("c", 32, 64, &rng);
  nn::Tensor x(batch, 32);
  nn::Tensor h(batch, 64);
  nn::NormalInit(&x, 1.0f, &rng);
  nn::Tensor out;
  for (auto _ : state) {
    cell.StepForward(x, h, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_RnnStepForward)->Arg(32)->Arg(256);

void BM_BiRnnSequenceForward(benchmark::State& state) {
  const int t_steps = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::StackedBiRnn rnn("r", 32, 64, 2, true, &rng);
  std::vector<nn::Tensor> steps(static_cast<size_t>(t_steps),
                                nn::Tensor(64, 32));
  for (auto& s : steps) nn::NormalInit(&s, 1.0f, &rng);
  nn::Tensor out;
  for (auto _ : state) {
    rnn.ApplyForward(steps, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BiRnnSequenceForward)->Arg(16)->Arg(64);

core::ModelConfig BenchModelConfig(bool enriched) {
  core::ModelConfig config;
  config.vocab = 80;
  config.max_len = 24;
  config.n_attrs = 11;
  config.enriched = enriched;
  config.seed = 4;
  return config;
}

core::BatchInput BenchBatch(const core::ModelConfig& config, int batch) {
  Rng rng(5);
  core::BatchInput b;
  b.batch = batch;
  b.char_steps.assign(static_cast<size_t>(config.max_len),
                      std::vector<int>(static_cast<size_t>(batch)));
  for (auto& step : b.char_steps) {
    for (auto& id : step) {
      id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(config.vocab)));
    }
  }
  for (int i = 0; i < batch; ++i) {
    b.attr_ids.push_back(static_cast<int>(rng.UniformInt(11)));
    b.length_norm.push_back(rng.UniformFloat(0.0f, 1.0f));
    b.labels.push_back(static_cast<int>(rng.UniformInt(2)));
  }
  return b;
}

void BM_ModelInference(benchmark::State& state) {
  const bool enriched = state.range(0) != 0;
  const core::ModelConfig config = BenchModelConfig(enriched);
  core::ErrorDetectionModel model(config);
  const core::BatchInput batch = BenchBatch(config, 128);
  std::vector<float> probs;
  for (auto _ : state) {
    model.PredictProbs(batch, &probs);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * 128);  // cells per second
}
BENCHMARK(BM_ModelInference)->Arg(0)->Arg(1);

void BM_ModelTrainStep(benchmark::State& state) {
  const bool enriched = state.range(0) != 0;
  const core::ModelConfig config = BenchModelConfig(enriched);
  core::ErrorDetectionModel model(config);
  const core::BatchInput batch = BenchBatch(config, 55);
  std::vector<nn::Parameter*> params = model.Params();
  nn::RmsProp opt(1e-3f);
  nn::Graph g;  // arena: reused across steps, as in Trainer::Fit
  for (auto _ : state) {
    g.Reset();
    nn::Graph::Var logits = model.Forward(&g, batch, true);
    nn::Graph::Var loss = g.SoftmaxCrossEntropy(logits, batch.labels);
    nn::ZeroGrads(params);
    g.Backward(loss);
    opt.Step(params);
    benchmark::DoNotOptimize(g.value(loss).scalar());
  }
  state.SetItemsProcessed(state.iterations() * 55);
}
BENCHMARK(BM_ModelTrainStep)->Arg(0)->Arg(1);

void BM_PreparePipeline(benchmark::State& state) {
  datagen::GenOptions gen;
  gen.scale = 0.2;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  for (auto _ : state) {
    auto frame = data::PrepareData(pair.dirty, pair.clean);
    benchmark::DoNotOptimize(frame->num_cells());
  }
}
BENCHMARK(BM_PreparePipeline);

void BM_DiverSetSampling(benchmark::State& state) {
  datagen::GenOptions gen;
  gen.scale = 0.2;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  sampling::DiverSetSampler sampler;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto ids = sampler.Select(*frame, 20, &rng);
    benchmark::DoNotOptimize(ids->size());
  }
}
BENCHMARK(BM_DiverSetSampling);

void BM_RahaSetSampling(benchmark::State& state) {
  datagen::GenOptions gen;
  gen.scale = 0.1;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  sampling::RahaSetSampler sampler;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto ids = sampler.Select(*frame, 20, &rng);
    benchmark::DoNotOptimize(ids->size());
  }
}
BENCHMARK(BM_RahaSetSampling);

void BM_EncodeCells(benchmark::State& state) {
  datagen::GenOptions gen;
  gen.scale = 0.2;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  for (auto _ : state) {
    data::EncodedDataset ds = data::EncodeCells(*frame, chars);
    benchmark::DoNotOptimize(ds.num_cells());
  }
}
BENCHMARK(BM_EncodeCells);

}  // namespace
}  // namespace birnn

BENCHMARK_MAIN();
