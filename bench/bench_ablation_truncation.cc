// Ablation for §4.1: "If the value has more than 128 characters ... we cut
// them off. Our experiments showed that this approach achieves good
// F1-score results and reduced the training time." Sweeps the truncation
// length on the long-value datasets (movies, rayyan by default) and
// reports F1 and training time per setting.

#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  flags.AddString("lengths", "16,32,64,128,256",
                  "comma-separated truncation lengths to sweep");
  FlagSet* f = &flags;
  BenchConfig config =
      ParseCommonFlags(f, argc, argv, "bench_ablation_truncation");
  // Long-value datasets by default (the ones §4.1 names).
  if (config.datasets.empty()) config.datasets = {"movies", "rayyan"};

  std::vector<int> lengths;
  for (const std::string& s : Split(flags.GetString("lengths"), ',')) {
    lengths.push_back(std::atoi(s.c_str()));
  }

  std::cout << "=== Ablation: value truncation length (ETSB-RNN, "
            << config.reps << " reps) ===\n\n";
  eval::TableWriter writer({"Dataset", "max_len", "F1", "F1 S.D.",
                            "train time [s]"});
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[truncation] " << dataset << "...\n";
    for (int max_len : lengths) {
      eval::RunnerOptions options = MakeRunnerOptions(config, "etsb");
      options.detector.prepare.max_value_len = max_len;
      const eval::RepeatedResult result =
          eval::RunRepeatedDetector(pair, options);
      writer.AddRow({dataset, std::to_string(max_len),
                     eval::Fmt2(result.f1.mean), eval::Fmt2(result.f1.stddev),
                     FormatFixed(result.train_seconds.mean, 2)});
    }
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
