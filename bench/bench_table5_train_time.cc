// Regenerates the paper's Table 5: training time per dataset for TSB-RNN
// and ETSB-RNN (average and standard deviation over repetitions).
//
// Absolute numbers reflect this machine, not the paper's Colab GPUs; the
// reproduced claims are relative — ETSB-RNN costs slightly more than
// TSB-RNN, and time scales with the number of attributes, the alphabet
// size and the longest value (§5.6).
//
// Train time is measured inside each job (per-repetition wall clock of
// Fit), so it is the same number whether the harness runs serial or
// parallel; the scheduler's own wall clock is reported separately. Cached
// repetitions replay their recorded train time, so use --cache=false when
// timing is the point of the run.

#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "table5_train_time.json");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table5_train_time");

  std::cout << "=== Table 5: Training time [sec] for the different datasets "
               "using TSB-RNN and ETSB-RNN ===\n"
            << "(" << config.reps << " repetitions, " << config.epochs
            << " epochs; CPU wall-clock on this machine)\n\n";

  const std::vector<datagen::DatasetPair> pairs = MakeAllPairs(config);
  std::unique_ptr<eval::ArtifactCache> cache = MakeCache(config);
  eval::Scheduler scheduler(MakeSchedulerOptions(config, cache.get()));
  std::vector<eval::Scheduler::ExperimentId> tsb_ids;
  std::vector<eval::Scheduler::ExperimentId> etsb_ids;
  for (const datagen::DatasetPair& pair : pairs) {
    tsb_ids.push_back(
        scheduler.SubmitDetector(pair, MakeRunnerOptions(config, "tsb")));
    etsb_ids.push_back(
        scheduler.SubmitDetector(pair, MakeRunnerOptions(config, "etsb")));
  }
  scheduler.RunAll();

  eval::TableWriter writer({"Name", "TSB AVG", "TSB S.D.", "ETSB AVG",
                            "ETSB S.D.", "ETSB/TSB"});
  std::vector<eval::RepeatedResult> results;
  double tsb_total = 0.0;
  double etsb_total = 0.0;
  for (size_t p = 0; p < pairs.size(); ++p) {
    const eval::RepeatedResult tsb = scheduler.Take(tsb_ids[p]);
    const eval::RepeatedResult etsb = scheduler.Take(etsb_ids[p]);
    const double ratio = tsb.train_seconds.mean > 0
                             ? etsb.train_seconds.mean / tsb.train_seconds.mean
                             : 0.0;
    writer.AddRow({tsb.dataset, FormatFixed(tsb.train_seconds.mean, 2),
                   FormatFixed(tsb.train_seconds.stddev, 2),
                   FormatFixed(etsb.train_seconds.mean, 2),
                   FormatFixed(etsb.train_seconds.stddev, 2),
                   FormatFixed(ratio, 2)});
    tsb_total += tsb.train_seconds.mean;
    etsb_total += etsb.train_seconds.mean;
    results.push_back(tsb);
    results.push_back(etsb);
  }
  if (!pairs.empty()) {
    const double n = static_cast<double>(pairs.size());
    writer.AddRow({"AVG", FormatFixed(tsb_total / n, 2), "",
                   FormatFixed(etsb_total / n, 2), "",
                   FormatFixed(tsb_total > 0 ? etsb_total / tsb_total : 0.0,
                               2)});
  }
  writer.Print(std::cout);
  PrintSchedulerSummary(scheduler, std::cout);

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("table").String("table5");
    json.Key("reps").Int(config.reps);
    json.Key("epochs").Int(config.epochs);
    json.Key("results").BeginArray();
    for (const eval::RepeatedResult& result : results) {
      WriteResultJson(&json, result);
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "JSON written to " << config.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
