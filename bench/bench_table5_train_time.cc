// Regenerates the paper's Table 5: training time per dataset for TSB-RNN
// and ETSB-RNN (average and standard deviation over repetitions).
//
// Absolute numbers reflect this machine, not the paper's Colab GPUs; the
// reproduced claims are relative — ETSB-RNN costs slightly more than
// TSB-RNN, and time scales with the number of attributes, the alphabet
// size and the longest value (§5.6).

#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table5_train_time");

  std::cout << "=== Table 5: Training time [sec] for the different datasets "
               "using TSB-RNN and ETSB-RNN ===\n"
            << "(" << config.reps << " repetitions, " << config.epochs
            << " epochs; CPU wall-clock on this machine)\n\n";

  eval::TableWriter writer({"Name", "TSB AVG", "TSB S.D.", "ETSB AVG",
                            "ETSB S.D.", "ETSB/TSB"});
  double tsb_total = 0.0;
  double etsb_total = 0.0;
  int n_datasets = 0;
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[table5] " << dataset << "...\n";
    const eval::RepeatedResult tsb =
        eval::RunRepeatedDetector(pair, MakeRunnerOptions(config, "tsb"));
    const eval::RepeatedResult etsb =
        eval::RunRepeatedDetector(pair, MakeRunnerOptions(config, "etsb"));
    const double ratio = tsb.train_seconds.mean > 0
                             ? etsb.train_seconds.mean / tsb.train_seconds.mean
                             : 0.0;
    writer.AddRow({dataset, FormatFixed(tsb.train_seconds.mean, 2),
                   FormatFixed(tsb.train_seconds.stddev, 2),
                   FormatFixed(etsb.train_seconds.mean, 2),
                   FormatFixed(etsb.train_seconds.stddev, 2),
                   FormatFixed(ratio, 2)});
    tsb_total += tsb.train_seconds.mean;
    etsb_total += etsb.train_seconds.mean;
    ++n_datasets;
  }
  if (n_datasets > 0) {
    writer.AddRow({"AVG", FormatFixed(tsb_total / n_datasets, 2), "",
                   FormatFixed(etsb_total / n_datasets, 2), "",
                   FormatFixed(etsb_total / tsb_total, 2)});
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
