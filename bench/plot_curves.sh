#!/bin/bash
# Renders the Fig. 6 / Fig. 7 curve output of bench_fig6_test_accuracy /
# bench_fig7_train_test as PNGs with gnuplot (if installed).
#
#   ./build/bench/bench_fig6_test_accuracy > fig6.txt
#   bench/plot_curves.sh fig6.txt out_dir/
#
# The bench output contains one "# <title>" block per series with
# epoch<TAB>mean<TAB>ci95 rows; each block becomes one plot with a shaded
# confidence band.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 <bench-output.txt> <out-dir>" >&2
  exit 2
fi
if ! command -v gnuplot >/dev/null; then
  echo "gnuplot not installed; raw curves are plain epoch/mean/ci columns" >&2
  exit 1
fi

input="$1"
outdir="$2"
mkdir -p "$outdir"

# Split into per-series data files.
awk -v outdir="$outdir" '
/^# Fig/ {
  title = substr($0, 3)
  gsub(/[^A-Za-z0-9._-]/, "_", title)
  file = outdir "/" title ".dat"
  next
}
/^#/ { next }
/^[0-9]/ && file != "" { print > file }
' "$input"

for dat in "$outdir"/*.dat; do
  [ -e "$dat" ] || continue
  png="${dat%.dat}.png"
  gnuplot <<EOF
set terminal pngcairo size 800,500
set output "$png"
set title "$(basename "${dat%.dat}")" noenhanced
set xlabel "epoch"
set ylabel "accuracy"
set yrange [0:1.05]
set style fill transparent solid 0.2 noborder
plot "$dat" using 1:(\$2-\$3):(\$2+\$3) with filledcurves lc rgb "#4477aa" notitle, \
     "$dat" using 1:2 with lines lw 2 lc rgb "#4477aa" title "mean"
EOF
  echo "wrote $png"
done
