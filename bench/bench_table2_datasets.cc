// Regenerates the paper's Table 2: dataset overview with size, error rate,
// number of distinct characters and error types — for both the paper's
// reference numbers and this repo's synthetic reproductions.

#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "datagen/stats.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "table2_datasets.json");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table2_datasets");

  std::cout << "=== Table 2: Overview of datasets with error types ===\n";
  std::cout << "(paper reference vs. this repo's synthetic reproduction; "
               "rows scale with --scale)\n\n";

  eval::TableWriter writer({"Name", "Size (paper)", "Size (generated)",
                            "Error Rate (paper)", "Error Rate (gen)",
                            "Diff. Chars (paper)", "Diff. Chars (gen)",
                            "Error Types"});
  std::ofstream json_out;
  std::unique_ptr<JsonWriter> json;
  if (!config.json_path.empty()) {
    json_out.open(config.json_path);
    json = std::make_unique<JsonWriter>(json_out);
    json->BeginObject();
    json->Key("table").String("table2");
    json->Key("datasets").BeginArray();
  }
  for (const std::string& name : DatasetList(config)) {
    const auto spec_or = datagen::FindDatasetSpec(name);
    if (!spec_or.ok()) {
      std::cerr << spec_or.status().ToString() << "\n";
      return 1;
    }
    const datagen::DatasetSpec& spec = *spec_or;
    const datagen::DatasetPair pair = MakePair(name, config);
    const datagen::DatasetStats stats = datagen::ComputeStats(pair);

    writer.AddRow({spec.name,
                   std::to_string(spec.paper_rows) + "x" +
                       std::to_string(spec.paper_cols),
                   std::to_string(stats.rows) + "x" +
                       std::to_string(stats.cols),
                   FormatFixed(spec.paper_error_rate, 2),
                   FormatFixed(stats.error_rate, 2),
                   std::to_string(spec.paper_distinct_chars),
                   std::to_string(stats.distinct_chars),
                   stats.error_types});
    if (json != nullptr) {
      json->BeginObject();
      json->Key("name").String(spec.name);
      json->Key("paper_rows").Int(spec.paper_rows);
      json->Key("paper_cols").Int(spec.paper_cols);
      json->Key("generated_rows").Int(stats.rows);
      json->Key("generated_cols").Int(stats.cols);
      json->Key("paper_error_rate").Number(spec.paper_error_rate);
      json->Key("generated_error_rate").Number(stats.error_rate);
      json->Key("paper_distinct_chars").Int(spec.paper_distinct_chars);
      json->Key("generated_distinct_chars").Int(stats.distinct_chars);
      json->Key("error_types").String(stats.error_types);
      json->EndObject();
    }
  }
  writer.Print(std::cout);
  if (json != nullptr) {
    json->EndArray();
    json->EndObject();
    json_out << "\n";
    std::cout << "\nJSON written to " << config.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
