// Open-loop soak of the epoll reactor serve plane.
//
// Train one detector, bundle it, and host it twice: once behind the
// blocking thread-per-connection baseline (which defines the expected
// response bytes for every request in the corpus) and once behind the
// reactor. Then drive the reactor with an *open-loop* load generator —
// thousands of concurrent connections, requests fired on a fixed schedule
// regardless of when responses come back, latency measured from the
// intended fire time (no coordinated omission) — followed by an overload
// burst that pipelines far more work than the admission queue can hold.
//
// Gates (process exits nonzero when violated):
//   (a) every reactor response is byte-identical to the blocking baseline;
//   (b) every request fired is answered — zero lost or hung requests,
//       including across the overload burst;
//   (c) the overload burst produces typed OVERLOADED sheds (backpressure
//       engages; it does not queue without bound or fall over);
//   (d) steady-state p999 stays under --p999-cap-ms.
//
// Writes BENCH_serve_soak.json (p50/p99/p999, rates, shed accounting).

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/report.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

using Clock = std::chrono::steady_clock;

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Raises RLIMIT_NOFILE toward `want` fds (best effort, capped at the hard
// limit); returns the resulting soft limit.
int64_t RaiseFdLimit(int64_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return -1;
  if (static_cast<int64_t>(lim.rlim_cur) < want) {
    rlimit raised = lim;
    raised.rlim_cur = static_cast<rlim_t>(
        std::min<int64_t>(want, static_cast<int64_t>(lim.rlim_max)));
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<int64_t>(lim.rlim_cur);
}

/// Pre-rendered request corpus: table cells chunked into detect requests,
/// each with a stable id == its corpus index (the byte-compare key).
struct Corpus {
  std::vector<std::string> lines;
  std::vector<std::string> expected;  ///< blocking baseline's response bytes.
};

Corpus BuildCorpus(const data::Table& dirty, int request_cells,
                   size_t max_requests) {
  Corpus corpus;
  const int n_attrs = dirty.num_columns();
  const int64_t n_rows = dirty.num_rows();
  std::string line;
  int in_request = 0;
  for (int64_t r = 0; r < n_rows && corpus.lines.size() < max_requests; ++r) {
    for (int a = 0; a < n_attrs; ++a) {
      if (in_request == 0) {
        line = R"({"id":")" + std::to_string(corpus.lines.size()) +
               R"(","op":"detect","cells":[)";
      } else {
        line += ',';
      }
      line += R"({"attr":)" + std::to_string(a) + R"(,"value":)";
      serve::AppendJsonString(dirty.cell(static_cast<int>(r), a), &line);
      line += '}';
      if (++in_request == request_cells) {
        line += "]}";
        corpus.lines.push_back(std::move(line));
        in_request = 0;
        if (corpus.lines.size() >= max_requests) break;
      }
    }
  }
  if (in_request > 0) {
    line += "]}";
    corpus.lines.push_back(std::move(line));
  }
  return corpus;
}

// The typed shed line the batcher produces for corpus request `index`
// (admission-queue overflow keeps the request id).
bool IsTypedShed(const std::string& response, size_t index) {
  return response.find("\"status\":\"OVERLOADED\"") != std::string::npos &&
         response.find("{\"id\":\"" + std::to_string(index) + "\"") == 0;
}

struct PhaseResult {
  std::string phase;
  int connections = 0;
  int64_t fired = 0;
  int64_t answered = 0;
  int64_t matched = 0;
  int64_t shed = 0;
  int64_t mismatched = 0;
  int64_t lost = 0;  ///< fired - answered after the drain deadline.
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

void FillQuantiles(std::vector<double>* latencies, PhaseResult* result) {
  if (latencies->empty()) return;
  std::sort(latencies->begin(), latencies->end());
  const auto at = [&](double q) {
    const size_t i = std::min(latencies->size() - 1,
                              static_cast<size_t>(q * latencies->size()));
    return (*latencies)[i];
  };
  result->p50_ms = at(0.50);
  result->p99_ms = at(0.99);
  result->p999_ms = at(0.999);
  result->max_ms = latencies->back();
}

/// One open-loop phase against the server on `port`.
///
/// `rps` > 0: fire `total` requests on the schedule t0 + i/rps, round-robin
/// across `n_conns` connections, latency from the *intended* fire time.
/// `rps` == 0: the overload shape — every request's intended time is t0
/// (fire as fast as the sockets accept), pipelining `total` requests across
/// the connections instantly.
PhaseResult RunOpenLoop(int port, const Corpus& corpus, const char* name,
                        int n_conns, int64_t total, double rps,
                        double drain_timeout_s) {
  PhaseResult result;
  result.phase = name;
  result.connections = n_conns;

  struct Conn {
    int fd = -1;
    std::string out;
    size_t out_off = 0;
    std::string in;
    std::deque<std::pair<size_t, Clock::time_point>> pending;
    bool want_write = false;
  };
  std::vector<Conn> conns(static_cast<size_t>(n_conns));
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  for (size_t c = 0; c < conns.size(); ++c) {
    conns[c].fd = ConnectTo(port);
    if (conns[c].fd < 0) {
      std::cerr << "[soak] connect " << c << " failed: "
                << std::strerror(errno) << "\n";
      result.lost = total;
      return result;
    }
    ::fcntl(conns[c].fd, F_SETFL,
            ::fcntl(conns[c].fd, F_GETFL, 0) | O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = c;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, conns[c].fd, &ev);
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(total));
  const Clock::time_point t0 = Clock::now();
  const auto intended = [&](int64_t i) {
    if (rps <= 0.0) return t0;
    return t0 + std::chrono::microseconds(
                    static_cast<int64_t>(1e6 * static_cast<double>(i) / rps));
  };

  const auto update_interest = [&](size_t c) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conns[c].want_write ? EPOLLOUT : 0u);
    ev.data.u64 = c;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conns[c].fd, &ev);
  };
  const auto try_flush = [&](size_t c) {
    Conn& conn = conns[c];
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_off,
                                conn.out.size() - conn.out_off);
      if (n > 0) {
        conn.out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          conn.want_write = true;
          update_interest(c);
        }
        return;
      }
      return;  // broken pipe — pending entries will count as lost
    }
    conn.out.clear();
    conn.out_off = 0;
    if (conn.want_write) {
      conn.want_write = false;
      update_interest(c);
    }
  };

  int64_t fired = 0;
  const Clock::time_point hard_deadline =
      t0 + std::chrono::microseconds(static_cast<int64_t>(
               1e6 * ((rps > 0 ? static_cast<double>(total) / rps : 0.0) +
                      drain_timeout_s)));
  epoll_event events[256];
  while (result.answered < total && Clock::now() < hard_deadline) {
    // Fire everything whose intended time has come.
    while (fired < total && intended(fired) <= Clock::now()) {
      const size_t c = static_cast<size_t>(fired % n_conns);
      const size_t index =
          static_cast<size_t>(fired) % corpus.lines.size();
      conns[c].pending.emplace_back(index, intended(fired));
      conns[c].out += corpus.lines[index];
      conns[c].out += '\n';
      ++fired;
      try_flush(c);
    }
    // Sleep until the next fire or the next socket event.
    int timeout_ms = 100;
    if (fired < total) {
      const auto until = intended(fired) - Clock::now();
      timeout_ms = static_cast<int>(std::max<int64_t>(
          0, std::chrono::duration_cast<std::chrono::milliseconds>(until)
                 .count()));
      timeout_ms = std::min(timeout_ms, 100);
    }
    const int n = ::epoll_wait(epfd, events, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const size_t c = events[i].data.u64;
      Conn& conn = conns[c];
      if (events[i].events & EPOLLOUT) try_flush(c);
      if (!(events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))) continue;
      char chunk[65536];
      for (;;) {
        const ssize_t r = ::read(conn.fd, chunk, sizeof(chunk));
        if (r > 0) {
          conn.in.append(chunk, static_cast<size_t>(r));
          continue;
        }
        if (r < 0 && errno == EINTR) continue;
        break;  // EAGAIN or EOF; EOF with pending -> counted lost at the end
      }
      size_t start = 0;
      for (;;) {
        const size_t nl = conn.in.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string response = conn.in.substr(start, nl - start);
        start = nl + 1;
        if (conn.pending.empty()) continue;  // never happens when matched
        const auto [index, fire_time] = conn.pending.front();
        conn.pending.pop_front();
        ++result.answered;
        latencies.push_back(
            std::chrono::duration<double>(Clock::now() - fire_time).count() *
            1e3);
        if (response == corpus.expected[index]) {
          ++result.matched;
        } else if (IsTypedShed(response, index)) {
          ++result.shed;
        } else {
          if (++result.mismatched <= 3) {
            std::cerr << "[soak] MISMATCH req " << index << ":\n  want "
                      << corpus.expected[index] << "\n  got  " << response
                      << "\n";
          }
        }
      }
      conn.in.erase(0, start);
    }
  }
  result.fired = fired;
  result.lost = fired - result.answered;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.requests_per_sec =
      result.seconds > 0
          ? static_cast<double>(result.answered) / result.seconds
          : 0.0;
  FillQuantiles(&latencies, &result);
  for (Conn& conn : conns) ::close(conn.fd);
  ::close(epfd);
  return result;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_serve_soak.json");
  flags.AddInt("connections", 2000, "concurrent open-loop connections");
  flags.AddInt("requests", 20000, "steady-state requests to fire");
  flags.AddDouble("rps", 4000.0, "steady-state open-loop request rate");
  flags.AddInt("request-cells", 3, "cells per detect request");
  flags.AddInt("corpus", 512, "distinct request lines in the corpus");
  flags.AddInt("overload-burst", 8,
               "pipelined requests per connection in the overload phase "
               "(0 skips the phase)");
  flags.AddInt("max-batch", 64, "micro-batcher max batch (cells)");
  flags.AddInt("max-delay-us", 2000, "micro-batcher window (microseconds)");
  flags.AddInt("queue-capacity", 4096, "admission queue bound (cells)");
  flags.AddInt("replicas", 2, "engine replicas for the served model");
  flags.AddInt("reactor-threads", 2, "reactor event loops");
  flags.AddDouble("p999-cap-ms", 2000.0,
                  "steady-state p999 gate (exceeding it fails the run)");
  flags.AddDouble("drain-timeout-s", 30.0,
                  "grace period for late responses before counting lost");
  BenchConfig config = ParseCommonFlags(&flags, argc, argv,
                                        "bench_serve_soak");
  const int n_conns = std::max(1, flags.GetInt("connections"));
  const int64_t n_requests = std::max(1, flags.GetInt("requests"));
  const int overload_burst = std::max(0, flags.GetInt("overload-burst"));
  const std::string dataset = DatasetList(config).front();

  const int64_t fd_limit = RaiseFdLimit(2 * n_conns + 256);
  if (fd_limit >= 0 && fd_limit < n_conns + 64) {
    std::cerr << "RLIMIT_NOFILE " << fd_limit << " too low for " << n_conns
              << " connections\n";
    return 1;
  }

  std::cout << "=== Serve soak (" << dataset << ", " << n_conns
            << " connections, " << n_requests << " req @ "
            << flags.GetDouble("rps") << "/s, replicas="
            << flags.GetInt("replicas") << ") ===\n\n";

  // ---- Train + bundle once.
  const datagen::DatasetPair pair = MakePair(dataset, config);
  core::DetectorOptions options;
  options.model = "etsb";
  options.n_label_tuples = config.n_label_tuples;
  options.trainer.epochs = config.epochs;
  options.seed = config.seed;
  core::ErrorDetector detector(options);
  core::TrainedDetector trained;
  auto report = detector.Run(pair.dirty, pair.clean, &trained);
  if (!report.ok()) {
    std::cerr << "training failed: " << report.status().message() << "\n";
    return 1;
  }
  const std::string bundle_dir = ".birnn-serve-soak-" + dataset;
  if (Status st = serve::SaveDetectorBundle(trained, bundle_dir); !st.ok()) {
    std::cerr << "bundle save failed: " << st.message() << "\n";
    return 1;
  }

  Corpus corpus = BuildCorpus(
      pair.dirty, std::max(1, flags.GetInt("request-cells")),
      static_cast<size_t>(std::max(1, flags.GetInt("corpus"))));

  serve::ServerOptions server_options;
  server_options.batcher.max_batch = flags.GetInt("max-batch");
  server_options.batcher.max_delay_us = flags.GetInt("max-delay-us");
  server_options.batcher.queue_capacity = flags.GetInt("queue-capacity");
  server_options.batcher.replicas = flags.GetInt("replicas");

  // ---- Blocking baseline defines the expected bytes per corpus line.
  {
    serve::ModelRegistry registry;
    if (Status st = registry.LoadBundle(dataset, bundle_dir); !st.ok()) {
      std::cerr << "bundle load failed: " << st.message() << "\n";
      return 1;
    }
    serve::ServerOptions blocking_options = server_options;
    blocking_options.mode = serve::ServeMode::kBlocking;
    serve::Server blocking(&registry, blocking_options);
    if (Status st = blocking.Start(); !st.ok()) {
      std::cerr << "blocking server start failed: " << st.message() << "\n";
      return 1;
    }
    const int fd = ConnectTo(blocking.port());
    std::string buffer;
    for (const std::string& line : corpus.lines) {
      std::string framed = line + "\n";
      if (::write(fd, framed.data(), framed.size()) !=
          static_cast<ssize_t>(framed.size())) {
        std::cerr << "baseline write failed\n";
        return 1;
      }
      std::string response;
      for (;;) {
        const size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
          response.assign(buffer, 0, nl);
          buffer.erase(0, nl + 1);
          break;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) {
          std::cerr << "baseline read failed\n";
          return 1;
        }
        buffer.append(chunk, static_cast<size_t>(n));
      }
      corpus.expected.push_back(std::move(response));
    }
    ::close(fd);
    blocking.Shutdown();
  }

  // ---- The reactor under soak.
  serve::ModelRegistry registry;
  if (Status st = registry.LoadBundle(dataset, bundle_dir); !st.ok()) {
    std::cerr << "bundle load failed: " << st.message() << "\n";
    return 1;
  }
  serve::ServerOptions reactor_options = server_options;
  reactor_options.mode = serve::ServeMode::kReactor;
  reactor_options.reactor_threads = flags.GetInt("reactor-threads");
  reactor_options.max_connections = 2 * n_conns + 16;
  serve::Server server(&registry, reactor_options);
  if (Status st = server.Start(); !st.ok()) {
    std::cerr << "reactor start failed: " << st.message() << "\n";
    return 1;
  }

  // Warmup: one sequential pass over the corpus, unmeasured. Populates the
  // replicas' shared verdict memo so the steady phase measures the serving
  // plane, not first-touch model latency — and double-checks the reactor's
  // bytes against the baseline before any load is applied.
  {
    const int fd = ConnectTo(server.port());
    std::string buffer;
    for (size_t i = 0; i < corpus.lines.size(); ++i) {
      std::string framed = corpus.lines[i] + "\n";
      if (::write(fd, framed.data(), framed.size()) !=
          static_cast<ssize_t>(framed.size())) {
        std::cerr << "warmup write failed\n";
        return 1;
      }
      std::string response;
      for (;;) {
        const size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
          response.assign(buffer, 0, nl);
          buffer.erase(0, nl + 1);
          break;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) {
          std::cerr << "warmup read failed\n";
          return 1;
        }
        buffer.append(chunk, static_cast<size_t>(n));
      }
      if (response != corpus.expected[i]) {
        std::cerr << "warmup MISMATCH req " << i << ":\n  want "
                  << corpus.expected[i] << "\n  got  " << response << "\n";
        return 1;
      }
    }
    ::close(fd);
  }

  std::vector<PhaseResult> phases;
  phases.push_back(RunOpenLoop(server.port(), corpus, "steady", n_conns,
                               n_requests, flags.GetDouble("rps"),
                               flags.GetDouble("drain-timeout-s")));
  if (overload_burst > 0) {
    phases.push_back(RunOpenLoop(
        server.port(), corpus, "overload", n_conns,
        static_cast<int64_t>(n_conns) * overload_burst, /*rps=*/0.0,
        flags.GetDouble("drain-timeout-s")));
  }
  server.Shutdown();
  std::filesystem::remove_all(bundle_dir);

  eval::TableWriter writer({"Phase", "Conns", "Fired", "Answered", "Shed",
                            "Lost", "Mismatch", "Req/s", "p50 ms", "p99 ms",
                            "p999 ms"});
  for (const PhaseResult& phase : phases) {
    writer.AddRow({phase.phase, std::to_string(phase.connections),
                   std::to_string(phase.fired),
                   std::to_string(phase.answered),
                   std::to_string(phase.shed), std::to_string(phase.lost),
                   std::to_string(phase.mismatched),
                   FormatFixed(phase.requests_per_sec, 0),
                   FormatFixed(phase.p50_ms, 2), FormatFixed(phase.p99_ms, 2),
                   FormatFixed(phase.p999_ms, 2)});
  }
  writer.Print(std::cout);

  // ---- Gates.
  int failures = 0;
  const PhaseResult& steady = phases.front();
  if (steady.mismatched > 0 || steady.shed > 0) {
    std::cout << "FAIL: steady phase had " << steady.mismatched
              << " mismatched / " << steady.shed << " shed responses\n";
    ++failures;
  }
  if (steady.p999_ms > flags.GetDouble("p999-cap-ms")) {
    std::cout << "FAIL: steady p999 " << FormatFixed(steady.p999_ms, 2)
              << " ms exceeds cap " << flags.GetDouble("p999-cap-ms")
              << " ms\n";
    ++failures;
  }
  for (const PhaseResult& phase : phases) {
    if (phase.lost > 0) {
      std::cout << "FAIL: " << phase.phase << " phase lost " << phase.lost
                << " request(s)\n";
      ++failures;
    }
    if (phase.mismatched > 0 && phase.phase != "steady") {
      std::cout << "FAIL: " << phase.phase << " phase had "
                << phase.mismatched << " mismatched response(s)\n";
      ++failures;
    }
  }
  if (phases.size() > 1 && phases.back().shed == 0) {
    std::cout << "FAIL: overload phase shed nothing — backpressure never "
                 "engaged (raise --overload-burst?)\n";
    ++failures;
  }
  std::cout << (failures == 0 ? "\nall gates passed\n"
                              : "\n" + std::to_string(failures) +
                                    " gate failure(s)\n");

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("dataset").String(dataset);
    json.Key("connections").Int(n_conns);
    json.Key("rps").Number(flags.GetDouble("rps"));
    json.Key("request_cells").Int(flags.GetInt("request-cells"));
    json.Key("replicas").Int(flags.GetInt("replicas"));
    json.Key("reactor_threads").Int(flags.GetInt("reactor-threads"));
    json.Key("queue_capacity").Int(flags.GetInt("queue-capacity"));
    json.Key("gates_passed").Bool(failures == 0);
    json.Key("phases").BeginArray();
    for (const PhaseResult& phase : phases) {
      json.BeginObject();
      json.Key("phase").String(phase.phase);
      json.Key("connections").Int(phase.connections);
      json.Key("fired").Int(phase.fired);
      json.Key("answered").Int(phase.answered);
      json.Key("matched").Int(phase.matched);
      json.Key("shed").Int(phase.shed);
      json.Key("mismatched").Int(phase.mismatched);
      json.Key("lost").Int(phase.lost);
      json.Key("seconds").Number(phase.seconds);
      json.Key("requests_per_sec").Number(phase.requests_per_sec);
      json.Key("p50_ms").Number(phase.p50_ms);
      json.Key("p99_ms").Number(phase.p99_ms);
      json.Key("p999_ms").Number(phase.p999_ms);
      json.Key("max_ms").Number(phase.max_ms);
      json.EndObject();
    }
    json.EndArray();
    json.Key("obs");
    WriteObsJson(&json);
    json.EndObject();
    out << "\n";
    std::cout << "wrote " << config.json_path << "\n";
  }
  WriteObsArtifacts(config);
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
