#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::bench {

void AddCommonFlags(FlagSet* flags) {
  flags->AddInt("reps", 3, "repetitions per experiment (paper: 10)");
  flags->AddInt("epochs", 80, "training epochs (paper: 120)");
  flags->AddInt("tuples", 20, "labeled tuples for training (paper: 20)");
  flags->AddDouble("scale", 0.0,
                   "dataset row-count scale; 0 = fast per-dataset default");
  flags->AddInt("seed", 1000, "base seed");
  flags->AddBool("paper-fidelity", false,
                 "use the paper's full settings (reps=10, epochs=120, "
                 "scale=1). Slow on one core.");
  flags->AddString("datasets", "",
                   "comma-separated subset (beers,flights,hospital,movies,"
                   "rayyan,tax); empty = all");
}

BenchConfig ParseCommonFlags(FlagSet* flags, int argc, char** argv,
                             const char* program) {
  Status st = flags->Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags->Usage(program).c_str());
    std::exit(2);
  }
  if (flags->help_requested()) {
    std::printf("%s", flags->Usage(program).c_str());
    std::exit(0);
  }
  BenchConfig config;
  config.reps = flags->GetInt("reps");
  config.epochs = flags->GetInt("epochs");
  config.n_label_tuples = flags->GetInt("tuples");
  config.scale = flags->GetDouble("scale");
  config.seed = static_cast<uint64_t>(flags->GetInt("seed"));
  config.paper_fidelity = flags->GetBool("paper-fidelity");
  if (config.paper_fidelity) {
    config.reps = 10;
    config.epochs = 120;
    config.scale = 1.0;
  }
  const std::string list = flags->GetString("datasets");
  if (!list.empty()) {
    for (const std::string& name : Split(list, ',')) {
      if (!name.empty()) config.datasets.push_back(ToLower(Trim(name)));
    }
  }
  return config;
}

double DefaultScale(const std::string& dataset, const BenchConfig& config) {
  if (config.scale > 0.0) return config.scale;
  auto spec = datagen::FindDatasetSpec(dataset);
  BIRNN_CHECK(spec.ok()) << spec.status().ToString();
  return 300.0 / spec->paper_rows;
}

datagen::DatasetPair MakePair(const std::string& dataset,
                              const BenchConfig& config) {
  datagen::GenOptions options;
  options.scale = DefaultScale(dataset, config);
  options.seed = config.seed ^ 0xDA7AULL;
  auto pair = datagen::MakeDataset(dataset, options);
  BIRNN_CHECK(pair.ok()) << pair.status().ToString();
  return std::move(*pair);
}

std::vector<std::string> DatasetList(const BenchConfig& config) {
  if (!config.datasets.empty()) return config.datasets;
  std::vector<std::string> out;
  for (const auto& spec : datagen::AllDatasetSpecs()) out.push_back(spec.name);
  return out;
}

eval::RunnerOptions MakeRunnerOptions(const BenchConfig& config,
                                      const std::string& model,
                                      const std::string& sampler) {
  eval::RunnerOptions options;
  options.repetitions = config.reps;
  options.base_seed = config.seed;
  options.detector.model = model;
  options.detector.sampler = sampler;
  options.detector.n_label_tuples = config.n_label_tuples;
  options.detector.trainer.epochs = config.epochs;
  return options;
}

}  // namespace birnn::bench
