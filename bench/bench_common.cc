#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "eval/report.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace birnn::bench {

void AddCommonFlags(FlagSet* flags, const std::string& default_json) {
  flags->AddInt("reps", 3, "repetitions per experiment (paper: 10)");
  flags->AddInt("epochs", 80, "training epochs (paper: 120)");
  flags->AddInt("tuples", 20, "labeled tuples for training (paper: 20)");
  flags->AddDouble("scale", 0.0,
                   "dataset row-count scale; 0 = fast per-dataset default");
  flags->AddInt("seed", 1000, "base seed");
  flags->AddBool("paper-fidelity", false,
                 "use the paper's full settings (reps=10, epochs=120, "
                 "scale=1). Slow on one core.");
  flags->AddString("datasets", "",
                   "comma-separated subset (beers,flights,hospital,movies,"
                   "rayyan,tax); empty = all");
  flags->AddInt("harness-threads", -1,
                "experiment-scheduler workers: -1 = hardware threads, "
                "0 = serial (results are identical either way)");
  flags->AddBool("cache", true,
                 "reuse cached (dataset, system, repetition) results and "
                 "store new ones (--cache=false disables)");
  flags->AddString("cache-dir", "",
                   "artifact cache directory; empty = $BIRNN_CACHE_DIR, "
                   "then .birnn-cache");
  flags->AddString("json", default_json,
                   "machine-readable output path (empty = skip)");
  flags->AddString("trace", "",
                   "Chrome trace_event JSON output path (load in "
                   "chrome://tracing; empty = skip)");
  flags->AddString("metrics", "",
                   "text metrics-snapshot output path (Prometheus "
                   "exposition; empty = skip)");
}

BenchConfig ParseCommonFlags(FlagSet* flags, int argc, char** argv,
                             const char* program) {
  Status st = flags->Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags->Usage(program).c_str());
    std::exit(2);
  }
  if (flags->help_requested()) {
    std::printf("%s", flags->Usage(program).c_str());
    std::exit(0);
  }
  BenchConfig config;
  config.reps = flags->GetInt("reps");
  config.epochs = flags->GetInt("epochs");
  config.n_label_tuples = flags->GetInt("tuples");
  config.scale = flags->GetDouble("scale");
  config.seed = static_cast<uint64_t>(flags->GetInt("seed"));
  config.paper_fidelity = flags->GetBool("paper-fidelity");
  if (config.paper_fidelity) {
    config.reps = 10;
    config.epochs = 120;
    config.scale = 1.0;
  }
  const std::string list = flags->GetString("datasets");
  if (!list.empty()) {
    for (const std::string& name : Split(list, ',')) {
      if (!name.empty()) config.datasets.push_back(ToLower(Trim(name)));
    }
  }
  config.harness_threads = flags->GetInt("harness-threads");
  config.cache_enabled = flags->GetBool("cache");
  config.cache_dir = flags->GetString("cache-dir");
  config.json_path = flags->GetString("json");
  config.trace_path = flags->GetString("trace");
  config.metrics_path = flags->GetString("metrics");
  return config;
}

double DefaultScale(const std::string& dataset, const BenchConfig& config) {
  if (config.scale > 0.0) return config.scale;
  auto spec = datagen::FindDatasetSpec(dataset);
  BIRNN_CHECK(spec.ok()) << spec.status().ToString();
  return 300.0 / spec->paper_rows;
}

datagen::DatasetPair MakePair(const std::string& dataset,
                              const BenchConfig& config) {
  datagen::GenOptions options;
  options.scale = DefaultScale(dataset, config);
  options.seed = config.seed ^ 0xDA7AULL;
  auto pair = datagen::MakeDataset(dataset, options);
  BIRNN_CHECK(pair.ok()) << pair.status().ToString();
  return std::move(*pair);
}

std::vector<std::string> DatasetList(const BenchConfig& config) {
  if (!config.datasets.empty()) return config.datasets;
  std::vector<std::string> out;
  for (const auto& spec : datagen::AllDatasetSpecs()) out.push_back(spec.name);
  return out;
}

std::vector<datagen::DatasetPair> MakeAllPairs(const BenchConfig& config) {
  std::vector<datagen::DatasetPair> pairs;
  const std::vector<std::string> names = DatasetList(config);
  pairs.reserve(names.size());
  for (const std::string& name : names) {
    std::fprintf(stderr, "[datagen] %s...\n", name.c_str());
    pairs.push_back(MakePair(name, config));
  }
  return pairs;
}

eval::RunnerOptions MakeRunnerOptions(const BenchConfig& config,
                                      const std::string& model,
                                      const std::string& sampler) {
  eval::RunnerOptions options;
  options.repetitions = config.reps;
  options.base_seed = config.seed;
  options.detector.model = model;
  options.detector.sampler = sampler;
  options.detector.n_label_tuples = config.n_label_tuples;
  options.detector.trainer.epochs = config.epochs;
  return options;
}

std::unique_ptr<eval::ArtifactCache> MakeCache(const BenchConfig& config) {
  if (!config.cache_enabled) return nullptr;
  return std::make_unique<eval::ArtifactCache>(config.cache_dir);
}

eval::SchedulerOptions MakeSchedulerOptions(const BenchConfig& config,
                                            eval::ArtifactCache* cache) {
  eval::SchedulerOptions options;
  options.threads = config.harness_threads;
  options.cache = cache;
  return options;
}

void PrintSchedulerSummary(const eval::Scheduler& scheduler,
                           std::ostream& out) {
  const eval::SchedulerStats& stats = scheduler.stats();
  out << "\nHarness: " << stats.jobs << " jobs (" << stats.computed
      << " computed, " << stats.cache_hits << " cached, " << stats.failures
      << " failed), " << stats.outer_threads << " outer x "
      << (stats.inner_threads < 0 ? 0 : stats.inner_threads)
      << " inner workers, wall-clock "
      << FormatFixed(stats.wall_seconds, 1) << " s\n";
}

int BestEpoch(const std::vector<core::EpochStats>& history) {
  int best = 0;
  for (size_t e = 1; e < history.size(); ++e) {
    if (history[e].train_loss < history[static_cast<size_t>(best)].train_loss) {
      best = static_cast<int>(e);
    }
  }
  return best;
}

void AddRunsToF1Map(F1Map* map, const eval::RepeatedResult& result) {
  for (const eval::Metrics& m : result.runs) {
    (*map)[result.system][result.dataset].push_back(m.f1);
  }
}

void PrintAggregateF1Table(const F1Map& map, std::ostream& out) {
  eval::TableWriter writer({"Name", "AVG w/o Flights", "S.D. w/o Flights",
                            "AVG with Flights", "S.D. with Flights"});
  for (const auto& [system, datasets] : map) {
    std::vector<double> without_flights;
    std::vector<double> with_flights;
    for (const auto& [dataset, f1s] : datasets) {
      const double mean_f1 = Mean(f1s);
      with_flights.push_back(mean_f1);
      if (dataset != "flights") without_flights.push_back(mean_f1);
    }
    writer.AddRow({system, eval::Fmt2(Mean(without_flights)),
                   eval::Fmt2(SampleStdDev(without_flights)),
                   eval::Fmt2(Mean(with_flights)),
                   eval::Fmt2(SampleStdDev(with_flights))});
  }
  writer.Print(out);
}

std::vector<std::pair<std::string, eval::Scheduler::ExperimentId>>
SubmitComparison(eval::Scheduler* scheduler, const datagen::DatasetPair& pair,
                 const BenchConfig& config, int rotom_cells,
                 bool skip_baselines) {
  std::vector<std::pair<std::string, eval::Scheduler::ExperimentId>> out;
  if (!skip_baselines) {
    out.emplace_back("Raha",
                     scheduler->SubmitRaha(pair, config.reps,
                                           config.n_label_tuples,
                                           config.seed));
    out.emplace_back("Rotom",
                     scheduler->SubmitRotom(pair, config.reps, rotom_cells,
                                            /*ssl=*/false, config.seed));
    out.emplace_back("Rotom+SSL",
                     scheduler->SubmitRotom(pair, config.reps, rotom_cells,
                                            /*ssl=*/true, config.seed));
  }
  out.emplace_back(
      "TSB-RNN",
      scheduler->SubmitDetector(pair, MakeRunnerOptions(config, "tsb")));
  out.emplace_back(
      "ETSB-RNN",
      scheduler->SubmitDetector(pair, MakeRunnerOptions(config, "etsb")));
  return out;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ << "{";
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  counts_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ << "[";
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  counts_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!counts_.empty() && counts_.back() > 0) out_ << ",";
  if (!counts_.empty()) counts_.back() = -1;  // String() below: no comma.
  String(name);
  out_ << ":";
  if (!counts_.empty()) counts_.back() = -1;  // next value: no comma.
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  return *this;
}

void JsonWriter::BeforeValue() {
  if (counts_.empty()) return;
  if (counts_.back() > 0) out_ << ",";
  if (counts_.back() < 0) counts_.back() = 0;  // value after a key.
  ++counts_.back();
}

void WriteResultJson(JsonWriter* json, const eval::RepeatedResult& result) {
  json->BeginObject();
  json->Key("dataset").String(result.dataset);
  json->Key("system").String(result.system);
  const auto summary = [json](const char* name, const Summary& s) {
    json->Key(name).BeginObject();
    json->Key("mean").Number(s.mean);
    json->Key("stddev").Number(s.stddev);
    json->Key("ci95").Number(s.ci95);
    json->Key("n").Int(static_cast<int64_t>(s.n));
    json->EndObject();
  };
  summary("precision", result.precision);
  summary("recall", result.recall);
  summary("f1", result.f1);
  summary("train_seconds", result.train_seconds);
  summary("train_cpu_seconds", result.train_cpu_seconds);
  json->Key("cache_hits").Int(result.cache_hits);
  json->Key("runs").BeginArray();
  for (const eval::Metrics& m : result.runs) {
    json->BeginObject();
    json->Key("precision").Number(m.precision);
    json->Key("recall").Number(m.recall);
    json->Key("f1").Number(m.f1);
    json->Key("accuracy").Number(m.accuracy);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

void WriteObsJson(JsonWriter* json) {
  const std::vector<obs::MetricSnapshot> snapshot =
      obs::Registry::Get().Snapshot();
  json->BeginObject();
  json->Key("counters").BeginObject();
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.type != obs::Metric::Type::kCounter) continue;
    json->Key(m.name).Int(m.counter);
  }
  json->EndObject();
  json->Key("gauges").BeginObject();
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.type != obs::Metric::Type::kGauge) continue;
    json->Key(m.name).Number(m.gauge);
  }
  json->EndObject();
  json->Key("histograms").BeginObject();
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.type != obs::Metric::Type::kHistogram) continue;
    json->Key(m.name).BeginObject();
    json->Key("count").Int(m.histogram.count);
    json->Key("sum").Number(m.histogram.sum);
    json->Key("p50").Number(m.histogram.Quantile(0.5));
    json->Key("p95").Number(m.histogram.Quantile(0.95));
    json->Key("p99").Number(m.histogram.Quantile(0.99));
    json->Key("max").Number(m.histogram.max);
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
}

void WriteObsArtifacts(const BenchConfig& config) {
  if (!config.trace_path.empty()) {
    const Status st = obs::Tracing::Get().WriteChromeTrace(config.trace_path);
    if (st.ok()) {
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  config.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
    }
  }
  if (!config.metrics_path.empty()) {
    std::ofstream out(config.metrics_path, std::ios::trunc);
    if (out) out << obs::Registry::Get().TextExposition();
    if (out) {
      std::printf("metrics snapshot written to %s\n",
                  config.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   config.metrics_path.c_str());
    }
  }
}

}  // namespace birnn::bench
