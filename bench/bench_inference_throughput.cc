// Whole-table inference throughput: cells/second for the forward-only
// sweep on each paper generator, comparing
//   naive     — the pre-engine path: allocate a fresh full-length batch per
//               chunk and run the scratch-free model forward,
//   memoized  — InferenceEngine with duplicate-cell memoization (default),
//   +bucketed — memoization plus length-bucketed backward pad-prefix reuse.
// Writes a machine-readable summary to --json (default BENCH_inference.json;
// see run_inference_throughput.sh).
//
// Both engine modes produce thresholded predictions identical to the naive
// sweep (the engine rows are additionally bit-identical to each other); the
// harness verifies this per dataset and refuses to report a speedup
// otherwise. Speedups come from work removal (dedup factor, skipped RNN
// steps) and allocation reuse, not threads — run with --threads for the
// sharded sweep.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/inference.h"
#include "core/model.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

struct ModeResult {
  double seconds = 0.0;
  double cells_per_sec = 0.0;
  std::vector<uint8_t> labels;
  std::vector<float> probs;
};

struct DatasetRow {
  std::string dataset;
  int64_t cells = 0;
  int64_t unique_cells = 0;
  double dedup_factor = 1.0;
  double step_fraction = 1.0;  // bucketed rnn_steps / dense rnn_steps.
  ModeResult naive;
  ModeResult memo;
  ModeResult bucketed;
  bool labels_match = false;
};

// The pre-engine sweep: for each eval_batch chunk, build a fresh
// full-length BatchInput and run the scratch-free forward. This is what
// Trainer::PredictDataset did before the engine existed.
void NaiveSweep(const core::ErrorDetectionModel& model,
                const data::EncodedDataset& ds, int eval_batch,
                ModeResult* out) {
  const int64_t n = ds.num_cells();
  out->probs.assign(static_cast<size_t>(n), 0.0f);
  Stopwatch timer;
  for (int64_t begin = 0; begin < n; begin += eval_batch) {
    const int64_t end = std::min<int64_t>(begin + eval_batch, n);
    std::vector<int64_t> ids;
    ids.reserve(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) ids.push_back(i);
    const core::BatchInput batch = core::MakeBatch(ds, ids);
    std::vector<float> probs;
    model.PredictProbs(batch, &probs);
    std::copy(probs.begin(), probs.end(),
              out->probs.begin() + static_cast<size_t>(begin));
  }
  out->seconds = timer.ElapsedSeconds();
  out->labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out->labels[static_cast<size_t>(i)] =
        out->probs[static_cast<size_t>(i)] > 0.5f ? 1 : 0;
  }
  out->cells_per_sec =
      out->seconds > 0 ? static_cast<double>(n) / out->seconds : 0.0;
}

void EngineSweep(const core::ErrorDetectionModel& model,
                 const data::EncodedDataset& ds,
                 const core::InferenceOptions& options, ModeResult* out,
                 core::InferenceStats* stats) {
  core::InferenceEngine engine(model, options);
  engine.PredictProbs(ds, {}, &out->probs);
  *stats = engine.stats();
  out->seconds = stats->seconds;
  const int64_t n = ds.num_cells();
  out->labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out->labels[static_cast<size_t>(i)] =
        out->probs[static_cast<size_t>(i)] > 0.5f ? 1 : 0;
  }
  out->cells_per_sec =
      out->seconds > 0 ? static_cast<double>(n) / out->seconds : 0.0;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_inference.json");
  flags.AddInt("eval-batch", 256, "cells per forward batch");
  flags.AddInt("threads", 0, "worker threads for the engine sweeps");
  flags.AddInt("bucket-quantum", 8, "length-bucket granularity");
  flags.AddInt("synthetic-rows", 0,
               "also sweep a synthetic duplicate-heavy table with this many "
               "rows (0 = off; the table is materialized, so keep total "
               "cells moderate here — bench_memo_footprint streams)");
  flags.AddInt("synthetic-cols", 2, "synthetic table columns");
  flags.AddInt("synthetic-uniques", 20000,
               "distinct cell contents per synthetic column");
  flags.AddInt("synthetic-naive-cells", 20000,
               "naive-arm sample size on the synthetic table (extrapolated)");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_inference_throughput");
  const int eval_batch = flags.GetInt("eval-batch");
  const int threads = flags.GetInt("threads");
  const int quantum = flags.GetInt("bucket-quantum");
  const int64_t synthetic_rows = flags.GetInt("synthetic-rows");

  std::cout << "=== Inference throughput (eval_batch=" << eval_batch
            << ", threads=" << threads << ", bucket_quantum=" << quantum
            << ") ===\n\n";

  std::vector<DatasetRow> rows;
  eval::TableWriter writer({"Dataset", "Cells", "Dedup", "Naive c/s",
                            "Memo c/s", "Speedup", "+Bucket c/s", "Speedup",
                            "Steps", "Match"});
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    auto frame = data::PrepareData(pair.dirty, pair.clean);
    if (!frame.ok()) {
      std::cerr << dataset << ": PrepareData failed: "
                << frame.status().message() << "\n";
      return 1;
    }
    const data::CharIndex chars = data::CharIndex::Build(*frame);
    const data::EncodedDataset all = data::EncodeCells(*frame, chars);

    core::ModelConfig model_config;
    model_config.vocab = all.vocab;
    model_config.max_len = all.max_len;
    model_config.n_attrs = all.n_attrs;
    model_config.enriched = true;
    model_config.seed = config.seed;
    core::ErrorDetectionModel model(model_config);
    model.CalibrateBatchNorm(all, eval_batch);

    DatasetRow row;
    row.dataset = dataset;
    row.cells = all.num_cells();

    NaiveSweep(model, all, eval_batch, &row.naive);

    core::InferenceOptions memo_options;
    memo_options.eval_batch = eval_batch;
    memo_options.threads = threads;
    core::InferenceStats memo_stats;
    EngineSweep(model, all, memo_options, &row.memo, &memo_stats);
    row.unique_cells = memo_stats.unique_cells;
    row.dedup_factor = memo_stats.dedup_factor;

    core::InferenceOptions bucket_options = memo_options;
    bucket_options.bucketed = true;
    bucket_options.bucket_quantum = quantum;
    core::InferenceStats bucket_stats;
    EngineSweep(model, all, bucket_options, &row.bucketed, &bucket_stats);
    row.step_fraction =
        bucket_stats.rnn_steps_dense > 0
            ? static_cast<double>(bucket_stats.rnn_steps) /
                  static_cast<double>(bucket_stats.rnn_steps_dense)
            : 1.0;

    row.labels_match = row.memo.labels == row.naive.labels &&
                       row.bucketed.labels == row.naive.labels &&
                       row.bucketed.probs == row.memo.probs;
    rows.push_back(row);

    const double memo_speedup = row.naive.seconds > 0 && row.memo.seconds > 0
                                    ? row.naive.seconds / row.memo.seconds
                                    : 0.0;
    const double bucket_speedup =
        row.naive.seconds > 0 && row.bucketed.seconds > 0
            ? row.naive.seconds / row.bucketed.seconds
            : 0.0;
    writer.AddRow({dataset, std::to_string(row.cells),
                   FormatFixed(row.dedup_factor, 1) + "x",
                   FormatFixed(row.naive.cells_per_sec, 0),
                   FormatFixed(row.memo.cells_per_sec, 0),
                   FormatFixed(memo_speedup, 1) + "x",
                   FormatFixed(row.bucketed.cells_per_sec, 0),
                   FormatFixed(bucket_speedup, 1) + "x",
                   FormatFixed(100.0 * row.step_fraction, 0) + "%",
                   row.labels_match ? "yes" : "NO"});
    std::cerr << "[inference] " << dataset << " naive="
              << FormatFixed(row.naive.seconds, 2) << "s memo="
              << FormatFixed(row.memo.seconds, 2) << "s bucketed="
              << FormatFixed(row.bucketed.seconds, 2) << "s\n";
  }

  // Optional duplicate-heavy synthetic table (warehouse-scale shape at
  // bench-scale row counts). The naive arm runs on a prefix sample and is
  // extrapolated — at these duplication factors the full naive sweep would
  // dominate the bench by hours without adding information.
  if (synthetic_rows > 0) {
    datagen::SyntheticSpec spec;
    spec.rows = synthetic_rows;
    spec.cols = flags.GetInt("synthetic-cols");
    spec.uniques_per_col = flags.GetInt("synthetic-uniques");
    spec.seed = config.seed;
    const datagen::SyntheticDataGen gen(spec);
    data::EncodedDataset all;
    gen.FillChunk(0, spec.rows, &all);

    core::ModelConfig model_config;
    model_config.vocab = all.vocab;
    model_config.max_len = all.max_len;
    model_config.n_attrs = all.n_attrs;
    model_config.units = 16;
    model_config.stacks = 1;
    model_config.enriched = true;
    model_config.seed = config.seed;
    core::ErrorDetectionModel model(model_config);
    model.CalibrateBatchNorm(all, eval_batch);

    DatasetRow row;
    row.dataset = "synthetic";
    row.cells = all.num_cells();

    const int64_t sample = std::min<int64_t>(
        all.num_cells(),
        std::max<int64_t>(flags.GetInt("synthetic-naive-cells"), eval_batch));
    {
      std::vector<int64_t> ids(static_cast<size_t>(sample));
      for (int64_t i = 0; i < sample; ++i) ids[static_cast<size_t>(i)] = i;
      const data::EncodedDataset head = data::TakeCells(all, ids);
      NaiveSweep(model, head, eval_batch, &row.naive);
    }

    core::InferenceOptions memo_options;
    memo_options.eval_batch = eval_batch;
    memo_options.threads = threads;
    core::InferenceStats memo_stats;
    EngineSweep(model, all, memo_options, &row.memo, &memo_stats);
    row.unique_cells = memo_stats.unique_cells;
    row.dedup_factor = memo_stats.dedup_factor;

    core::InferenceOptions bucket_options = memo_options;
    bucket_options.bucketed = true;
    bucket_options.bucket_quantum = quantum;
    core::InferenceStats bucket_stats;
    EngineSweep(model, all, bucket_options, &row.bucketed, &bucket_stats);
    row.step_fraction =
        bucket_stats.rnn_steps_dense > 0
            ? static_cast<double>(bucket_stats.rnn_steps) /
                  static_cast<double>(bucket_stats.rnn_steps_dense)
            : 1.0;

    // Naive covered only the sample prefix: compare thresholded labels on
    // that prefix, probs bit-exactly between the engine arms (full sweep).
    row.labels_match =
        std::equal(row.naive.labels.begin(), row.naive.labels.end(),
                   row.memo.labels.begin()) &&
        row.bucketed.labels == row.memo.labels &&
        row.bucketed.probs == row.memo.probs;
    // Extrapolate the naive arm to the full cell count for the speedup
    // columns (cells/sec is measured, seconds is scaled).
    if (row.naive.cells_per_sec > 0) {
      row.naive.seconds =
          static_cast<double>(row.cells) / row.naive.cells_per_sec;
    }
    rows.push_back(row);

    const double memo_speedup = row.naive.seconds > 0 && row.memo.seconds > 0
                                    ? row.naive.seconds / row.memo.seconds
                                    : 0.0;
    const double bucket_speedup =
        row.naive.seconds > 0 && row.bucketed.seconds > 0
            ? row.naive.seconds / row.bucketed.seconds
            : 0.0;
    writer.AddRow({row.dataset, std::to_string(row.cells),
                   FormatFixed(row.dedup_factor, 1) + "x",
                   FormatFixed(row.naive.cells_per_sec, 0) + "*",
                   FormatFixed(row.memo.cells_per_sec, 0),
                   FormatFixed(memo_speedup, 1) + "x",
                   FormatFixed(row.bucketed.cells_per_sec, 0),
                   FormatFixed(bucket_speedup, 1) + "x",
                   FormatFixed(100.0 * row.step_fraction, 0) + "%",
                   row.labels_match ? "yes" : "NO"});
    std::cerr << "[inference] synthetic rows=" << spec.rows << " cols="
              << spec.cols << " uniques/col=" << spec.uniques_per_col
              << " memo=" << FormatFixed(row.memo.seconds, 2)
              << "s (naive extrapolated from " << sample << " cells)\n";
  }
  writer.Print(std::cout);

  int mismatches = 0;
  for (const DatasetRow& row : rows) {
    if (!row.labels_match) ++mismatches;
  }
  if (mismatches > 0) {
    std::cout << "\nWARNING: " << mismatches
              << " dataset(s) with prediction mismatch — speedups invalid\n";
  }

  const std::string& json_path = config.json_path;
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    // JsonWriter emits doubles with %.17g, so the recorded throughputs and
    // speedups round-trip exactly (ostream's default 6 digits does not).
    JsonWriter json(out);
    json.BeginObject();
    json.Key("eval_batch").Int(eval_batch);
    json.Key("threads").Int(threads);
    json.Key("bucket_quantum").Int(quantum);
    json.Key("datasets").BeginArray();
    for (const DatasetRow& row : rows) {
      const double memo_speedup =
          row.memo.seconds > 0 ? row.naive.seconds / row.memo.seconds : 0.0;
      const double bucket_speedup =
          row.bucketed.seconds > 0 ? row.naive.seconds / row.bucketed.seconds
                                   : 0.0;
      json.BeginObject();
      json.Key("dataset").String(row.dataset);
      json.Key("cells").Int(row.cells);
      json.Key("unique_cells").Int(row.unique_cells);
      json.Key("dedup_factor").Number(row.dedup_factor);
      json.Key("naive_cells_per_sec").Number(row.naive.cells_per_sec);
      json.Key("memo_cells_per_sec").Number(row.memo.cells_per_sec);
      json.Key("memo_speedup").Number(memo_speedup);
      json.Key("bucketed_cells_per_sec").Number(row.bucketed.cells_per_sec);
      json.Key("bucketed_speedup").Number(bucket_speedup);
      json.Key("bucketed_step_fraction").Number(row.step_fraction);
      json.Key("predictions_match").Bool(row.labels_match);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return mismatches > 0 ? 1 : 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
