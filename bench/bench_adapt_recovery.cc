// Drift-triggered adaptation recovery, measured end to end through the
// serve plane (the full ISSUE-10 loop: stream -> drift -> adapt -> gate ->
// promote -> serve).
//
// Per dataset: train an incumbent detector, host it behind the blocking
// transport, and hold back ~30% of the rows as an evaluation slice the
// session never sees. The incumbent's pre-drift F1 on that slice, with a
// bootstrap CI95 band, is the recovery target. Then the feed drifts: every
// in-dictionary character is remapped through a rank bijection (dictionary
// rank k -> k+1 mod N) and an out-of-vocabulary marker byte is appended —
// an information-preserving transform (errors stay exactly as separable as
// before), so a fine-tune *can* recover, while the frozen incumbent reads
// scrambled text and degrades. Truth labels carry over unchanged.
//
// Phases, all over the wire:
//   1. baseline  — detect the held-back slice, bootstrap the CI95 F1 band.
//   2. degrade   — detect the drifted slice against the frozen incumbent;
//                  its F1 must fall below the band (else there is no drift
//                  worth adapting to and the run fails).
//   3. stream    — the remaining rows arrive drifted as "delta" inserts;
//                  the session's OOV-rate alarms must latch.
//   4. promote   — an "adapt" with truthful labels while client threads
//                  keep firing detect requests: every request fired must be
//                  answered well-formed (zero dropped across the live
//                  swap), and the candidate must be promoted.
//   5. recover   — detect the drifted held-back slice (never streamed,
//                  never fine-tuned on) against the promoted generation;
//                  its F1 must climb back into the pre-drift band.
//   6. poison    — the drifted feed re-streams into the promoted
//                  generation's fresh session, then an "adapt" with
//                  *inverted* labels but truthful gate_labels: the
//                  candidate fine-tunes on lies, the gate scores it on
//                  truth against the (now well-adapted) incumbent, and
//                  promotion must be REJECTED with detect responses
//                  byte-identical across the attempt. (Poisoning the
//                  adapted generation, not the degraded one, makes the
//                  rejection structural: the incumbent's gate F1 is high,
//                  so no amount of luck lets the sabotaged candidate past.)
//   7. rollback  — swap the pre-adaptation incumbent back; the pinned
//                  detect request must again answer byte-identically to
//                  the pre-adaptation bytes.
//
// Structural gates (poison rejection, byte identity, zero drops, promotion
// accounting) always fail the run; the two statistical F1-band gates are
// enforced under --gate (they depend on dataset scale). Writes
// BENCH_adapt.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/detector.h"
#include "data/dictionary.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One synchronous request/response exchange; "" on any transport failure
/// (short write, EOF before the newline).
std::string RoundTrip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  if (::write(fd, framed.data(), framed.size()) !=
      static_cast<ssize_t>(framed.size())) {
    return "";
  }
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return response;
    response.push_back(c);
  }
  return "";
}

/// The drift transform: a bijection over the incumbent's dictionary
/// (rank k -> rank k+1 mod N, identity outside it) plus one appended
/// marker byte chosen to be out-of-vocabulary. Bijective per character and
/// constant-suffix, so two values differ after the transform iff they
/// differed before — the error/clean separation the labels encode is
/// untouched while the surface distribution walks completely away.
struct DriftTransform {
  std::array<char, 256> map{};
  char oov_marker = '\x01';

  std::string Apply(const std::string& value) const {
    if (value.empty()) return value;  // NULLs stay NULLs under pipe drift.
    std::string out;
    out.reserve(value.size() + 1);
    for (const char c : value) {
      out.push_back(map[static_cast<unsigned char>(c)]);
    }
    out.push_back(oov_marker);
    return out;
  }
};

DriftTransform MakeDriftTransform(const data::CharIndex& chars) {
  DriftTransform t;
  const std::array<int, 256>& table = chars.index_table();
  const int n = chars.num_chars();
  std::vector<unsigned char> by_rank(static_cast<size_t>(n) + 1, 0);
  for (int c = 0; c < 256; ++c) {
    if (table[static_cast<size_t>(c)] > 0) {
      by_rank[static_cast<size_t>(table[static_cast<size_t>(c)])] =
          static_cast<unsigned char>(c);
    }
  }
  for (int c = 0; c < 256; ++c) {
    const int rank = table[static_cast<size_t>(c)];
    t.map[static_cast<size_t>(c)] =
        (rank > 0 && n > 1)
            ? static_cast<char>(by_rank[static_cast<size_t>(rank % n) + 1])
            : static_cast<char>(c);
  }
  for (int c = 0x21; c < 0x7f; ++c) {
    if (table[static_cast<size_t>(c)] == 0) {
      t.oov_marker = static_cast<char>(c);
      break;
    }
  }
  return t;
}

std::string DetectRequest(const std::string& id,
                          const std::vector<std::string>& values) {
  std::string line = "{\"id\":";
  serve::AppendJsonString(id, &line);
  line += ",\"op\":\"detect\",\"cells\":[";
  for (size_t a = 0; a < values.size(); ++a) {
    if (a > 0) line.push_back(',');
    line += "{\"attr\":" + std::to_string(a) + ",\"value\":";
    serve::AppendJsonString(values[a], &line);
    line.push_back('}');
  }
  line += "]}";
  return line;
}

std::vector<std::string> RowValues(const data::Table& dirty, int64_t row,
                                   const DriftTransform* drift) {
  std::vector<std::string> values;
  const int n_attrs = dirty.num_columns();
  values.reserve(static_cast<size_t>(n_attrs));
  for (int a = 0; a < n_attrs; ++a) {
    std::string v = dirty.cell(static_cast<int>(row), a);
    values.push_back(drift != nullptr ? drift->Apply(v) : std::move(v));
  }
  return values;
}

/// Scores `rows` of the dirty table (optionally drifted) through wire
/// detect requests; appends per-cell predictions and the matching truth
/// labels. Returns false (with `*error` set) on any non-OK response.
bool DetectRows(int fd, const data::Table& dirty,
                const std::vector<int64_t>& rows, const DriftTransform* drift,
                const std::vector<int32_t>& truth_all,
                std::vector<uint8_t>* pred, std::vector<int32_t>* truth,
                std::string* error) {
  const int n_attrs = dirty.num_columns();
  for (const int64_t row : rows) {
    const std::string response = RoundTrip(
        fd, DetectRequest("e" + std::to_string(row), RowValues(dirty, row, drift)));
    auto parsed = serve::JsonValue::Parse(response);
    if (!parsed.ok() || parsed->GetString("status") != "OK") {
      *error = "detect row " + std::to_string(row) + ": " +
               (response.empty() ? "no response" : response);
      return false;
    }
    const serve::JsonValue* results = parsed->Find("results");
    if (results == nullptr ||
        results->items().size() != static_cast<size_t>(n_attrs)) {
      *error = "detect row " + std::to_string(row) + ": malformed results";
      return false;
    }
    for (int a = 0; a < n_attrs; ++a) {
      const serve::JsonValue* flag =
          results->items()[static_cast<size_t>(a)].Find("error");
      pred->push_back(flag != nullptr && flag->as_bool() ? 1 : 0);
      truth->push_back(truth_all[static_cast<size_t>(row) *
                                     static_cast<size_t>(n_attrs) +
                                 static_cast<size_t>(a)]);
    }
  }
  return true;
}

double F1Of(const std::vector<uint8_t>& pred,
            const std::vector<int32_t>& truth) {
  return eval::Evaluate(pred, truth).F1();
}

/// Percentile bootstrap of the F1 over the (prediction, truth) cells:
/// the incumbent's sampling noise on this slice, i.e. the band "as good as
/// before drift" means.
void BootstrapBand(const std::vector<uint8_t>& pred,
                   const std::vector<int32_t>& truth, uint64_t seed, int reps,
                   double* lo, double* hi) {
  std::vector<double> f1s;
  f1s.reserve(static_cast<size_t>(reps));
  Rng rng(seed);
  const size_t n = pred.size();
  for (int rep = 0; rep < reps; ++rep) {
    eval::Confusion c;
    for (size_t i = 0; i < n; ++i) {
      const size_t j = static_cast<size_t>(rng.UniformInt(n));
      c.Add(pred[j], truth[j]);
    }
    f1s.push_back(c.F1());
  }
  std::sort(f1s.begin(), f1s.end());
  *lo = f1s[static_cast<size_t>(0.025 * reps)];
  *hi = f1s[std::min(static_cast<size_t>(reps) - 1,
                     static_cast<size_t>(0.975 * reps))];
}

/// Labels for the streamed rows as the adapt op's wire array; the
/// injector's ground truth, optionally inverted (the poison phase).
std::string LabelsJson(const std::vector<int64_t>& rows, int n_attrs,
                       const std::vector<int32_t>& truth_all, bool invert) {
  std::string out = "[";
  bool first = true;
  for (const int64_t row : rows) {
    for (int a = 0; a < n_attrs; ++a) {
      const int32_t label = truth_all[static_cast<size_t>(row) *
                                          static_cast<size_t>(n_attrs) +
                                      static_cast<size_t>(a)];
      if (!first) out.push_back(',');
      first = false;
      out += "{\"row\":" + std::to_string(row) +
             ",\"attr\":" + std::to_string(a) +
             ",\"label\":" + std::to_string(invert ? 1 - label : label) + "}";
    }
  }
  out.push_back(']');
  return out;
}

struct ProbeTally {
  int64_t fired = 0;
  int64_t answered = 0;
  int64_t malformed = 0;  ///< answered but not a well-formed OK line.
};

struct DatasetResult {
  std::string dataset;
  int64_t rows = 0;
  int n_attrs = 0;
  int64_t stream_rows = 0;
  int64_t eval_rows = 0;
  double train_seconds = 0.0;

  double pre_drift_f1 = 0.0;
  double band_lo = 0.0;
  double band_hi = 0.0;
  double frozen_drift_f1 = 0.0;
  double adapted_f1 = 0.0;
  bool degraded = false;
  bool recovered = false;

  int64_t drift_alarms = 0;
  std::string poison_outcome;
  bool poison_bytes_identical = false;
  std::string adapt_outcome;
  bool deterministic_eval = false;
  double incumbent_gate_f1 = 0.0;
  double candidate_gate_f1 = 0.0;
  int64_t train_cells = 0;
  int64_t validation_cells = 0;
  int64_t generation = 0;
  double adapt_seconds = 0.0;

  ProbeTally probes;
  bool rollback_bytes_identical = false;
  int64_t adapt_attempts = 0;
  int64_t adapt_promotions = 0;
  int64_t adapt_rejections = 0;

  std::vector<std::string> failures;
};

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "BENCH_adapt.json");
  flags.AddDouble("eval-frac", 0.3,
                  "fraction of rows held back as the never-streamed "
                  "recovery-evaluation slice");
  flags.AddInt("bootstrap", 200, "bootstrap resamples for the CI95 F1 band");
  flags.AddInt("adapt-epochs", 64, "fine-tune epochs per adaptation attempt");
  flags.AddDouble("adapt-lr", 2e-3, "fine-tune learning rate");
  flags.AddDouble("validation-frac", 0.15,
                  "reservoir fraction held back for the promotion gate "
                  "(the rest feeds the fine-tune)");
  flags.AddInt("clients", 4,
               "detect-spamming client threads during the live promotion");
  flags.AddInt("probe-interval-ms", 25,
               "pause between probe detects per client (a paced trickle "
               "spans the swap without starving the fine-tune of CPU)");
  flags.AddDouble("min-band-width", 0.06,
                  "minimum distance below the pre-drift F1 the band floor "
                  "may sit at. The cell-resampling bootstrap collapses to "
                  "a near-zero band when the incumbent scores the slice "
                  "perfectly, which would demand the adapted model beat "
                  "the seed-to-seed noise of full retraining itself; the "
                  "default matches the widest measured cross-seed fp32 "
                  "CI95 half-width (hospital, BENCH_precision.json)");
  flags.AddBool("gate", false,
                "also enforce the statistical F1-band gates (frozen "
                "degrades below the band, adapted recovers into it)");
  BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_adapt_recovery");
  const double eval_frac =
      std::min(0.9, std::max(0.05, flags.GetDouble("eval-frac")));
  const int bootstrap = std::max(10, flags.GetInt("bootstrap"));
  const int adapt_epochs = std::max(1, flags.GetInt("adapt-epochs"));
  const double adapt_lr = flags.GetDouble("adapt-lr");
  const double validation_frac =
      std::min(0.5, std::max(0.05, flags.GetDouble("validation-frac")));
  const int n_clients = std::max(1, flags.GetInt("clients"));
  const int probe_interval_ms = std::max(0, flags.GetInt("probe-interval-ms"));
  const double min_band_width = flags.GetDouble("min-band-width");
  const bool gate = flags.GetBool("gate");

  std::cout << "=== Adaptation recovery (adapt_epochs=" << adapt_epochs
            << ", eval_frac=" << FormatFixed(eval_frac, 2)
            << ", clients=" << n_clients << ") ===\n\n";

  std::vector<DatasetResult> all;
  eval::TableWriter writer({"Dataset", "Rows", "Pre F1", "Band lo", "Frozen",
                            "Adapted", "Poison", "Probes", "Drops", "Roll"});

  uint64_t dataset_index = 0;
  for (const std::string& dataset : DatasetList(config)) {
    ++dataset_index;
    const datagen::DatasetPair pair = MakePair(dataset, config);
    DatasetResult dr;
    dr.dataset = dataset;
    dr.rows = pair.dirty.num_rows();
    dr.n_attrs = pair.dirty.num_columns();

    core::DetectorOptions options;
    options.model = "etsb";
    options.n_label_tuples = config.n_label_tuples;
    options.trainer.epochs = config.epochs;
    options.seed = config.seed;
    core::ErrorDetector detector(options);
    core::TrainedDetector trained;
    Stopwatch train_timer;
    auto report = detector.Run(pair.dirty, pair.clean, &trained);
    if (!report.ok()) {
      std::cerr << dataset << ": training failed: "
                << report.status().message() << "\n";
      return 1;
    }
    dr.train_seconds = train_timer.ElapsedSeconds();
    const std::vector<int32_t> truth = report->truth;

    auto loaded = serve::MakeLoadedDetector(std::move(trained));
    if (!loaded.ok()) {
      std::cerr << dataset << ": " << loaded.status().message() << "\n";
      return 1;
    }
    serve::ModelRegistry registry;
    if (Status st = registry.Add(dataset, std::move(loaded).value());
        !st.ok()) {
      std::cerr << dataset << ": " << st.message() << "\n";
      return 1;
    }
    const DriftTransform drift =
        MakeDriftTransform(registry.Get(dataset)->chars());

    // Row split: the tail of the table is the held-back evaluation slice
    // (never streamed, never fine-tuned on), the head is the CDC feed.
    const int64_t n_eval = std::max<int64_t>(
        8, static_cast<int64_t>(static_cast<double>(dr.rows) * eval_frac));
    dr.eval_rows = std::min(n_eval, dr.rows - 2);
    dr.stream_rows = dr.rows - dr.eval_rows;
    std::vector<int64_t> stream_rows, eval_rows;
    for (int64_t r = 0; r < dr.stream_rows; ++r) stream_rows.push_back(r);
    for (int64_t r = dr.stream_rows; r < dr.rows; ++r) eval_rows.push_back(r);

    const std::string candidate_dir =
        (std::filesystem::temp_directory_path() /
         ("birnn_bench_adapt_" + dataset + "_" +
          std::to_string(::getpid())))
            .string();
    serve::ServerOptions server_options;
    server_options.mode = serve::ServeMode::kBlocking;
    server_options.io_threads = n_clients + 2;
    server_options.stream_session.drift.min_cells =
        std::max<int64_t>(4, std::min<int64_t>(16, dr.stream_rows / 2));
    server_options.stream_session.reservoir_capacity = dr.rows + 16;
    server_options.adapt.fine_tune_epochs = adapt_epochs;
    server_options.adapt.learning_rate = static_cast<float>(adapt_lr);
    server_options.adapt.validation_fraction = validation_frac;
    server_options.adapt.min_reservoir_rows = 2;
    server_options.adapt.seed = config.seed;
    server_options.adapt_bundle_dir = candidate_dir;
    serve::Server server(&registry, server_options);
    if (Status st = server.Start(); !st.ok()) {
      std::cerr << dataset << ": server start failed: " << st.message()
                << "\n";
      return 1;
    }
    const int fd = ConnectTo(server.port());
    if (fd < 0) {
      std::cerr << dataset << ": connect failed\n";
      return 1;
    }

    std::cerr << "[adapt] " << dataset << ": incumbent trained ("
              << FormatFixed(dr.train_seconds, 1) << "s), measuring\n";
    // Phase 1: pre-drift baseline F1 + bootstrap CI95 band on the
    // held-back slice. The band floor keeps a degenerate all-correct slice
    // (zero bootstrap spread) from demanding exact perfection back.
    std::string error;
    {
      std::vector<uint8_t> pred;
      std::vector<int32_t> t;
      if (!DetectRows(fd, pair.dirty, eval_rows, nullptr, truth, &pred, &t,
                      &error)) {
        std::cerr << dataset << ": " << error << "\n";
        return 1;
      }
      dr.pre_drift_f1 = F1Of(pred, t);
      BootstrapBand(pred, t, config.seed + dataset_index, bootstrap,
                    &dr.band_lo, &dr.band_hi);
      dr.band_lo = std::min(dr.band_lo, dr.pre_drift_f1 - min_band_width);
    }

    // Phase 2: the frozen incumbent reads the drifted slice.
    {
      std::vector<uint8_t> pred;
      std::vector<int32_t> t;
      if (!DetectRows(fd, pair.dirty, eval_rows, &drift, truth, &pred, &t,
                      &error)) {
        std::cerr << dataset << ": " << error << "\n";
        return 1;
      }
      dr.frozen_drift_f1 = F1Of(pred, t);
    }
    dr.degraded = dr.frozen_drift_f1 < dr.band_lo;
    if (gate && !dr.degraded) {
      dr.failures.push_back(
          "frozen F1 " + FormatFixed(dr.frozen_drift_f1, 4) +
          " did not degrade below the band floor " +
          FormatFixed(dr.band_lo, 4));
    }

    std::cerr << "[adapt] " << dataset << ": pre="
              << FormatFixed(dr.pre_drift_f1, 3) << " band_lo="
              << FormatFixed(dr.band_lo, 3) << " frozen="
              << FormatFixed(dr.frozen_drift_f1, 3) << ", streaming\n";
    // Phase 3: the drifted feed streams in as wire deltas. (Reused in
    // phase 6: the promoted generation's session starts empty, so the
    // poison attempt needs the feed replayed into it.)
    const auto stream_feed = [&]() -> bool {
      for (size_t i = 0; i < stream_rows.size();) {
        std::string line = "{\"id\":\"d\",\"op\":\"delta\",\"deltas\":[";
        for (int k = 0; k < 32 && i < stream_rows.size(); ++k, ++i) {
          if (k > 0) line.push_back(',');
          line += "{\"kind\":\"insert\",\"row\":" +
                  std::to_string(stream_rows[i]) + ",\"values\":[";
          const std::vector<std::string> values =
              RowValues(pair.dirty, stream_rows[i], &drift);
          for (size_t a = 0; a < values.size(); ++a) {
            if (a > 0) line.push_back(',');
            serve::AppendJsonString(values[a], &line);
          }
          line += "]}";
        }
        line += "]}";
        const std::string response = RoundTrip(fd, line);
        if (response.find("\"status\":\"OK\"") == std::string::npos) {
          std::cerr << dataset << ": delta failed: " << response << "\n";
          return false;
        }
      }
      return true;
    };
    if (!stream_feed()) return 1;
    {
      auto stats = serve::JsonValue::Parse(
          RoundTrip(fd, "{\"id\":\"s\",\"op\":\"stats\"}"));
      if (stats.ok()) {
        dr.drift_alarms =
            static_cast<int64_t>(stats->GetNumber("drift_alarms"));
      }
      if (dr.drift_alarms < 1) {
        dr.failures.push_back("no drift alarm latched after the drifted "
                              "feed (OOV marker should have fired)");
      }
    }

    // The pinned request: one drifted evaluation row whose response bytes
    // must survive a rejected candidate and a rollback unchanged.
    const std::string pinned =
        DetectRequest("pin", RowValues(pair.dirty, eval_rows[0], &drift));
    const std::string before = RoundTrip(fd, pinned);

    std::cerr << "[adapt] " << dataset << ": feed streamed, adapting\n";
    // Phase 4: live promotion under fire. Client threads spam detect on
    // their own connections for the whole adapt call; every request fired
    // must come back as a well-formed OK line.
    {
      std::atomic<bool> stop{false};
      std::vector<ProbeTally> tallies(static_cast<size_t>(n_clients));
      std::vector<std::thread> clients;
      for (int c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
          const int probe_fd = ConnectTo(server.port());
          if (probe_fd < 0) return;
          const std::string probe = DetectRequest(
              "p" + std::to_string(c),
              RowValues(pair.dirty,
                        eval_rows[static_cast<size_t>(c) % eval_rows.size()],
                        &drift));
          ProbeTally& tally = tallies[static_cast<size_t>(c)];
          while (!stop.load(std::memory_order_relaxed)) {
            ++tally.fired;
            const std::string response = RoundTrip(probe_fd, probe);
            if (response.empty()) continue;  // lost: fired - answered.
            ++tally.answered;
            if (response.rfind("{\"id\":", 0) != 0 ||
                response.find("\"status\":\"OK\"") == std::string::npos) {
              ++tally.malformed;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(probe_interval_ms));
          }
          ::close(probe_fd);
        });
      }
      const std::string request =
          "{\"id\":\"adapt\",\"op\":\"adapt\",\"labels\":" +
          LabelsJson(stream_rows, dr.n_attrs, truth, /*invert=*/false) + "}";
      Stopwatch adapt_timer;
      auto response = serve::JsonValue::Parse(RoundTrip(fd, request));
      dr.adapt_seconds = adapt_timer.ElapsedSeconds();
      stop.store(true);
      for (std::thread& t : clients) t.join();
      for (const ProbeTally& tally : tallies) {
        dr.probes.fired += tally.fired;
        dr.probes.answered += tally.answered;
        dr.probes.malformed += tally.malformed;
      }
      if (!response.ok()) {
        std::cerr << dataset << ": adapt unparseable\n";
        return 1;
      }
      dr.adapt_outcome = response->GetString("outcome");
      const serve::JsonValue* det = response->Find("deterministic_eval");
      dr.deterministic_eval = det != nullptr && det->as_bool();
      dr.incumbent_gate_f1 = response->GetNumber("incumbent_f1");
      dr.candidate_gate_f1 = response->GetNumber("candidate_f1");
      dr.train_cells = static_cast<int64_t>(response->GetNumber("train_cells"));
      dr.validation_cells =
          static_cast<int64_t>(response->GetNumber("validation_cells"));
      dr.generation = static_cast<int64_t>(response->GetNumber("generation"));
      if (dr.adapt_outcome != "promoted") {
        dr.failures.push_back("truthful candidate was not promoted (got \"" +
                              dr.adapt_outcome +
                              "\": " + response->GetString("reason") + ")");
      }
      if (!dr.deterministic_eval) {
        dr.failures.push_back("candidate evaluation was not bit-reproducible");
      }
      if (dr.probes.fired != dr.probes.answered) {
        dr.failures.push_back(
            std::to_string(dr.probes.fired - dr.probes.answered) +
            " detect request(s) dropped across the live promotion");
      }
      if (dr.probes.malformed != 0) {
        dr.failures.push_back(std::to_string(dr.probes.malformed) +
                              " malformed detect response(s) during the "
                              "live promotion");
      }
    }

    // Phase 5: recovery on the never-streamed drifted slice, served by the
    // promoted generation.
    if (dr.adapt_outcome == "promoted") {
      std::vector<uint8_t> pred;
      std::vector<int32_t> t;
      if (!DetectRows(fd, pair.dirty, eval_rows, &drift, truth, &pred, &t,
                      &error)) {
        std::cerr << dataset << ": " << error << "\n";
        return 1;
      }
      dr.adapted_f1 = F1Of(pred, t);
      dr.recovered = dr.adapted_f1 >= dr.band_lo;
      if (gate && !dr.recovered) {
        dr.failures.push_back("adapted F1 " + FormatFixed(dr.adapted_f1, 4) +
                              " below the band floor " +
                              FormatFixed(dr.band_lo, 4));
      }
    }

    std::cerr << "[adapt] " << dataset << ": " << dr.adapt_outcome
              << " in " << FormatFixed(dr.adapt_seconds, 1)
              << "s, adapted=" << FormatFixed(dr.adapted_f1, 3)
              << ", poisoning\n";
    // Phase 6: poisoned candidate against the adapted incumbent. The
    // promoted generation's session starts empty (new baselines), so the
    // feed replays first; then the fine-tune labels are inverted truth
    // while the gate oracle keeps the truth. The adapted incumbent scores
    // high on the drifted validation slice, so the sabotaged candidate
    // cannot sneak past the band — rejection is structural. Serving must
    // be bit-for-bit undisturbed across the attempt.
    if (dr.adapt_outcome == "promoted") {
      if (!stream_feed()) return 1;
      const std::string pinned_now = RoundTrip(fd, pinned);
      const std::string request =
          "{\"id\":\"poison\",\"op\":\"adapt\",\"labels\":" +
          LabelsJson(stream_rows, dr.n_attrs, truth, /*invert=*/true) +
          ",\"gate_labels\":" +
          LabelsJson(stream_rows, dr.n_attrs, truth, /*invert=*/false) + "}";
      auto response = serve::JsonValue::Parse(RoundTrip(fd, request));
      if (!response.ok()) {
        std::cerr << dataset << ": poison adapt unparseable\n";
        return 1;
      }
      dr.poison_outcome = response->GetString("outcome");
      if (dr.poison_outcome != "rejected") {
        dr.failures.push_back("poisoned candidate was not rejected (got \"" +
                              dr.poison_outcome + "\")");
      }
      dr.poison_bytes_identical = RoundTrip(fd, pinned) == pinned_now;
      if (!dr.poison_bytes_identical) {
        dr.failures.push_back(
            "detect bytes changed across the rejected candidate");
      }
    }

    // Phase 7: rollback restores the incumbent bit for bit.
    {
      const std::string response =
          RoundTrip(fd, "{\"id\":\"rb\",\"op\":\"rollback\"}");
      if (response.find("\"status\":\"OK\"") == std::string::npos) {
        dr.failures.push_back("rollback failed: " + response);
      }
      dr.rollback_bytes_identical = RoundTrip(fd, pinned) == before;
      if (!dr.rollback_bytes_identical) {
        dr.failures.push_back("detect bytes differ after rollback");
      }
      auto stats = serve::JsonValue::Parse(
          RoundTrip(fd, "{\"id\":\"s2\",\"op\":\"stats\"}"));
      if (stats.ok()) {
        dr.adapt_attempts =
            static_cast<int64_t>(stats->GetNumber("adapt_attempts"));
        dr.adapt_promotions =
            static_cast<int64_t>(stats->GetNumber("adapt_promotions"));
        dr.adapt_rejections =
            static_cast<int64_t>(stats->GetNumber("adapt_rejections"));
      }
      if (dr.adapt_attempts != 2 || dr.adapt_promotions != 1 ||
          dr.adapt_rejections != 1) {
        dr.failures.push_back(
            "adapt lineage accounting off: attempts=" +
            std::to_string(dr.adapt_attempts) +
            " promotions=" + std::to_string(dr.adapt_promotions) +
            " rejections=" + std::to_string(dr.adapt_rejections));
      }
    }

    ::close(fd);
    server.Shutdown();
    std::error_code ec;
    std::filesystem::remove_all(candidate_dir, ec);

    writer.AddRow({dataset, std::to_string(dr.rows),
                   FormatFixed(dr.pre_drift_f1, 3),
                   FormatFixed(dr.band_lo, 3),
                   FormatFixed(dr.frozen_drift_f1, 3),
                   FormatFixed(dr.adapted_f1, 3), dr.poison_outcome,
                   std::to_string(dr.probes.fired),
                   std::to_string(dr.probes.fired - dr.probes.answered),
                   dr.rollback_bytes_identical ? "byte-id" : "DIFF"});
    std::cerr << "[adapt] " << dataset << " rows=" << dr.rows
              << " train=" << FormatFixed(dr.train_seconds, 1) << "s"
              << " adapt=" << FormatFixed(dr.adapt_seconds, 1) << "s"
              << " pre=" << FormatFixed(dr.pre_drift_f1, 3)
              << " frozen=" << FormatFixed(dr.frozen_drift_f1, 3)
              << " adapted=" << FormatFixed(dr.adapted_f1, 3)
              << (dr.failures.empty() ? "" : " FAIL") << "\n";
    all.push_back(std::move(dr));
  }
  writer.Print(std::cout);

  int failures = 0;
  for (const DatasetResult& dr : all) {
    for (const std::string& f : dr.failures) {
      std::cout << "FAIL " << dr.dataset << ": " << f << "\n";
      ++failures;
    }
  }
  std::cout << (failures == 0 ? "\nall adaptation checks passed\n"
                              : "\n" + std::to_string(failures) +
                                    " adaptation check failure(s)\n");

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("epochs").Int(config.epochs);
    json.Key("scale").Number(config.scale);
    json.Key("adapt_epochs").Int(adapt_epochs);
    json.Key("adapt_lr").Number(adapt_lr);
    json.Key("eval_frac").Number(eval_frac);
    json.Key("bootstrap").Int(bootstrap);
    json.Key("clients").Int(n_clients);
    json.Key("min_band_width").Number(min_band_width);
    json.Key("gates_passed").Bool(failures == 0);
    json.Key("datasets").BeginArray();
    for (const DatasetResult& dr : all) {
      json.BeginObject();
      json.Key("dataset").String(dr.dataset);
      json.Key("rows").Int(dr.rows);
      json.Key("n_attrs").Int(dr.n_attrs);
      json.Key("stream_rows").Int(dr.stream_rows);
      json.Key("eval_rows").Int(dr.eval_rows);
      json.Key("train_seconds").Number(dr.train_seconds);
      json.Key("pre_drift_f1").Number(dr.pre_drift_f1);
      json.Key("band_lo").Number(dr.band_lo);
      json.Key("band_hi").Number(dr.band_hi);
      json.Key("frozen_drift_f1").Number(dr.frozen_drift_f1);
      json.Key("adapted_f1").Number(dr.adapted_f1);
      json.Key("degraded").Bool(dr.degraded);
      json.Key("recovered").Bool(dr.recovered);
      json.Key("drift_alarms").Int(dr.drift_alarms);
      json.Key("poison_outcome").String(dr.poison_outcome);
      json.Key("poison_bytes_identical").Bool(dr.poison_bytes_identical);
      json.Key("adapt_outcome").String(dr.adapt_outcome);
      json.Key("deterministic_eval").Bool(dr.deterministic_eval);
      json.Key("incumbent_gate_f1").Number(dr.incumbent_gate_f1);
      json.Key("candidate_gate_f1").Number(dr.candidate_gate_f1);
      json.Key("train_cells").Int(dr.train_cells);
      json.Key("validation_cells").Int(dr.validation_cells);
      json.Key("generation").Int(dr.generation);
      json.Key("adapt_seconds").Number(dr.adapt_seconds);
      json.Key("probe_requests_fired").Int(dr.probes.fired);
      json.Key("probe_requests_answered").Int(dr.probes.answered);
      json.Key("probe_requests_malformed").Int(dr.probes.malformed);
      json.Key("rollback_bytes_identical").Bool(dr.rollback_bytes_identical);
      json.Key("adapt_attempts").Int(dr.adapt_attempts);
      json.Key("adapt_promotions").Int(dr.adapt_promotions);
      json.Key("adapt_rejections").Int(dr.adapt_rejections);
      json.EndObject();
    }
    json.EndArray();
    json.Key("obs");
    WriteObsJson(&json);
    json.EndObject();
    out << "\n";
    std::cout << "wrote " << config.json_path << "\n";
  }
  WriteObsArtifacts(config);
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
