// Regenerates the paper's Table 4 standalone: average F1 and standard
// deviation across datasets, with and without Flights, for every system.
//
// Either aggregates a CSV produced by `bench_table3_comparison --out ...`
// (--from), or reruns a reduced comparison itself through eval::Scheduler
// (default).

#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

StatusOr<F1Map> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  F1Map map;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 6) continue;
    double f1 = 0.0;
    if (!ParseDouble(fields[5], &f1)) continue;
    map[fields[0]][fields[1]].push_back(f1);
  }
  if (map.empty()) return Status::InvalidArgument("no rows in " + path);
  return map;
}

F1Map ComputeFresh(const BenchConfig& config, int rotom_cells) {
  const std::vector<datagen::DatasetPair> pairs = MakeAllPairs(config);
  std::unique_ptr<eval::ArtifactCache> cache = MakeCache(config);
  eval::Scheduler scheduler(MakeSchedulerOptions(config, cache.get()));
  std::vector<std::pair<std::string, eval::Scheduler::ExperimentId>> cells;
  for (const datagen::DatasetPair& pair : pairs) {
    for (auto& cell : SubmitComparison(&scheduler, pair, config, rotom_cells,
                                       /*skip_baselines=*/false)) {
      cells.push_back(std::move(cell));
    }
  }
  scheduler.RunAll();
  F1Map map;
  for (auto& [system, id] : cells) {
    eval::RepeatedResult result = scheduler.Take(id);
    result.system = system;
    AddRunsToF1Map(&map, result);
  }
  PrintSchedulerSummary(scheduler, std::cout);
  return map;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags, "table4_aggregate.json");
  flags.AddString("from", "table3_metrics.csv",
                  "CSV from bench_table3_comparison --out; if the file is "
                  "missing the comparison is rerun here");
  flags.AddInt("rotom-cells", 200, "labeled cells for the Rotom baselines");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table4_aggregate");

  F1Map map;
  const std::string from = flags.GetString("from");
  bool loaded_from_csv = false;
  if (!from.empty()) {
    auto loaded = LoadCsv(from);
    if (loaded.ok()) {
      map = std::move(*loaded);
      loaded_from_csv = true;
      std::cout << "(aggregating " << from << ")\n";
    } else {
      std::cerr << "note: " << loaded.status().ToString()
                << " — rerunning the comparison\n";
    }
  }
  if (!loaded_from_csv) {
    map = ComputeFresh(config, flags.GetInt("rotom-cells"));
  }

  std::cout << "=== Table 4: Average F1-score (AVG) and Standard Deviation "
               "(S.D.) for the different models ===\n\n";
  PrintAggregateF1Table(map, std::cout);

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    JsonWriter json(out);
    json.BeginObject();
    json.Key("table").String("table4");
    json.Key("systems").BeginArray();
    for (const auto& [system, datasets] : map) {
      std::vector<double> without_flights;
      std::vector<double> with_flights;
      json.BeginObject();
      json.Key("system").String(system);
      json.Key("datasets").BeginObject();
      for (const auto& [dataset, f1s] : datasets) {
        const double mean_f1 = Mean(f1s);
        json.Key(dataset).Number(mean_f1);
        with_flights.push_back(mean_f1);
        if (dataset != "flights") without_flights.push_back(mean_f1);
      }
      json.EndObject();
      json.Key("avg_without_flights").Number(Mean(without_flights));
      json.Key("sd_without_flights").Number(SampleStdDev(without_flights));
      json.Key("avg_with_flights").Number(Mean(with_flights));
      json.Key("sd_with_flights").Number(SampleStdDev(with_flights));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::cout << "\nJSON written to " << config.json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
