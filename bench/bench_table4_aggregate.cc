// Regenerates the paper's Table 4 standalone: average F1 and standard
// deviation across datasets, with and without Flights, for every system.
//
// Either aggregates a CSV produced by `bench_table3_comparison --out ...`
// (--from), or reruns a reduced comparison itself (default).

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace birnn::bench {
namespace {

// system -> dataset -> per-rep F1 values.
using F1Map = std::map<std::string, std::map<std::string, std::vector<double>>>;

StatusOr<F1Map> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  F1Map map;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 6) continue;
    double f1 = 0.0;
    if (!ParseDouble(fields[5], &f1)) continue;
    map[fields[0]][fields[1]].push_back(f1);
  }
  if (map.empty()) return Status::InvalidArgument("no rows in " + path);
  return map;
}

F1Map ComputeFresh(const BenchConfig& config, int rotom_cells) {
  F1Map map;
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[table4] " << dataset << "...\n";
    auto add = [&](const eval::RepeatedResult& result) {
      for (const auto& m : result.runs) {
        map[result.system][dataset].push_back(m.f1);
      }
    };
    add(eval::RunRepeatedRaha(pair, config.reps, config.n_label_tuples,
                              config.seed));
    add(eval::RunRepeatedRotom(pair, config.reps, rotom_cells, false,
                               config.seed));
    add(eval::RunRepeatedRotom(pair, config.reps, rotom_cells, true,
                               config.seed));
    auto tsb = eval::RunRepeatedDetector(pair, MakeRunnerOptions(config, "tsb"));
    tsb.system = "TSB-RNN";
    add(tsb);
    auto etsb =
        eval::RunRepeatedDetector(pair, MakeRunnerOptions(config, "etsb"));
    etsb.system = "ETSB-RNN";
    add(etsb);
  }
  return map;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  flags.AddString("from", "table3_metrics.csv",
                  "CSV from bench_table3_comparison --out; if the file is "
                  "missing the comparison is rerun here");
  flags.AddInt("rotom-cells", 200, "labeled cells for the Rotom baselines");
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_table4_aggregate");

  F1Map map;
  const std::string from = flags.GetString("from");
  bool loaded_from_csv = false;
  if (!from.empty()) {
    auto loaded = LoadCsv(from);
    if (loaded.ok()) {
      map = std::move(*loaded);
      loaded_from_csv = true;
      std::cout << "(aggregating " << from << ")\n";
    } else {
      std::cerr << "note: " << loaded.status().ToString()
                << " — rerunning the comparison\n";
    }
  }
  if (!loaded_from_csv) {
    map = ComputeFresh(config, flags.GetInt("rotom-cells"));
  }

  std::cout << "=== Table 4: Average F1-score (AVG) and Standard Deviation "
               "(S.D.) for the different models ===\n\n";
  eval::TableWriter writer({"Name", "AVG w/o Flights", "S.D. w/o Flights",
                            "AVG with Flights", "S.D. with Flights"});
  for (const auto& [system, datasets] : map) {
    std::vector<double> without_flights;
    std::vector<double> with_flights;
    for (const auto& [dataset, f1s] : datasets) {
      const double mean_f1 = Mean(f1s);
      with_flights.push_back(mean_f1);
      if (dataset != "flights") without_flights.push_back(mean_f1);
    }
    writer.AddRow({system, eval::Fmt2(Mean(without_flights)),
                   eval::Fmt2(SampleStdDev(without_flights)),
                   eval::Fmt2(Mean(with_flights)),
                   eval::Fmt2(SampleStdDev(with_flights))});
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
