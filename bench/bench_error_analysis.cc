// Quantitative version of the paper's §5.5 error analysis: per dataset,
// the detector's recall broken down by error class (MV / T / FI / VAD).
// The paper's qualitative findings this reproduces: character-visible
// errors (typos, formatting issues, missing values) are caught well, while
// cross-record errors (Flights' shifted times, domain-valid dependency
// violations) are the model's blind spot.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/detector.h"
#include "eval/report.h"

namespace birnn::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const BenchConfig config =
      ParseCommonFlags(&flags, argc, argv, "bench_error_analysis");

  std::cout << "=== Error analysis (§5.5): ETSB-RNN recall per error type "
            << "(" << config.reps << " reps, " << config.epochs
            << " epochs) ===\n\n";

  eval::TableWriter writer(
      {"Dataset", "Type", "Errors", "Detected", "Recall"});
  for (const std::string& dataset : DatasetList(config)) {
    const datagen::DatasetPair pair = MakePair(dataset, config);
    std::cerr << "[error_analysis] " << dataset << "...\n";
    const int n_cols = pair.dirty.num_columns();

    // detected[type] / total[type], summed over repetitions.
    std::map<datagen::ErrorType, int64_t> total;
    std::map<datagen::ErrorType, int64_t> detected;
    for (int rep = 0; rep < config.reps; ++rep) {
      core::DetectorOptions options;
      options.n_label_tuples = config.n_label_tuples;
      options.trainer.epochs = config.epochs;
      options.seed = config.seed + static_cast<uint64_t>(rep);
      core::ErrorDetector detector(options);
      auto report = detector.Run(pair.dirty, pair.clean);
      if (!report.ok()) {
        std::cerr << report.status().ToString() << "\n";
        continue;
      }
      for (const datagen::InjectedError& err : pair.injected_errors) {
        ++total[err.type];
        const size_t cell =
            static_cast<size_t>(err.row) * n_cols + static_cast<size_t>(err.col);
        if (report->predicted[cell]) ++detected[err.type];
      }
    }
    for (const auto& [type, count] : total) {
      const int64_t hit = detected[type];
      writer.AddRow({dataset, datagen::ErrorTypeCode(type),
                     std::to_string(count), std::to_string(hit),
                     eval::Fmt2(count == 0 ? 0.0
                                           : static_cast<double>(hit) /
                                                 static_cast<double>(count))});
    }
  }
  writer.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace birnn::bench

int main(int argc, char** argv) { return birnn::bench::Run(argc, argv); }
