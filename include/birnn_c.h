/* birnn_c.h — embeddable C API for streaming error detection.
 *
 * A minimal, UDF-callable surface over the birnn detector: load a saved
 * bundle once, open per-table streaming sessions against it, feed
 * insert/update/delete deltas and read back per-cell verdicts — from any
 * host that can call C (database UDFs, FFI bindings, plain C programs).
 *
 * Conventions:
 *   - Opaque handles; every object is created by one birnn_* function and
 *     released by its matching *_free (NULL-safe, like free()).
 *   - Every fallible call returns a birnn_status code. No exceptions ever
 *     cross this boundary; internal C++ errors are caught and mapped.
 *   - On failure, birnn_last_error() returns a human-readable message for
 *     the calling thread's most recent failing call.
 *   - A session is thread-safe; a detector is immutable after load and may
 *     back any number of concurrent sessions.
 */

#ifndef BIRNN_C_H_
#define BIRNN_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Mirrors birnn::StatusCode (util/status.h). Values are ABI: they are
 * frozen once released and new codes are only appended. */
typedef enum birnn_status {
  BIRNN_OK = 0,
  BIRNN_INVALID_ARGUMENT = 1,
  BIRNN_NOT_FOUND = 2,
  BIRNN_OUT_OF_RANGE = 3,
  BIRNN_FAILED_PRECONDITION = 4,
  BIRNN_INTERNAL = 5,
  BIRNN_UNIMPLEMENTED = 6,
  BIRNN_IO_ERROR = 7,
  BIRNN_OVERLOADED = 8,
  /* Delta ops were attempted against a bundle that carries no frozen
   * column statistics (pre-v3 manifest). Re-save the bundle from a
   * current detector run. */
  BIRNN_UNSUPPORTED_BUNDLE = 9
} birnn_status;

/* A trained detector reconstructed from a saved bundle directory. */
typedef struct birnn_detector birnn_detector;

/* A CDC streaming session over one detector (see stream/session.h). */
typedef struct birnn_session birnn_session;

/* The detector's answer for one cell of a materialized tuple. */
typedef struct birnn_verdict {
  int32_t is_error;  /* 1 = the cell is predicted erroneous. */
  float p_error;     /* raw error probability in [0, 1]. */
  uint64_t version;  /* delta sequence number that produced the verdict. */
} birnn_verdict;

/* Message for the calling thread's most recent failing birnn_* call, or ""
 * if none failed yet. The pointer stays valid until the same thread's next
 * failing call; never returns NULL. */
const char* birnn_last_error(void);

/* Loads a detector bundle (the manifest.txt/weights.ckpt directory written
 * by the save tooling) into *out. */
birnn_status birnn_detector_load(const char* bundle_dir,
                                 birnn_detector** out);
void birnn_detector_free(birnn_detector* detector);

/* Number of attributes (columns) of the table the detector was trained
 * on; -1 on a NULL detector. */
int32_t birnn_detector_n_attrs(const birnn_detector* detector);

/* 1 when the bundle carries the frozen column statistics streaming needs
 * (manifest v3); 0 otherwise (sessions cannot be opened against it). */
int32_t birnn_detector_stream_capable(const birnn_detector* detector);

/* Opens a streaming session against a loaded detector. The detector may
 * be freed while sessions are live; each session keeps it alive. Fails
 * with BIRNN_UNSUPPORTED_BUNDLE unless birnn_detector_stream_capable(). */
birnn_status birnn_session_create(const birnn_detector* detector,
                                  birnn_session** out);
void birnn_session_free(birnn_session* session);

/* Inserts a full tuple: values[0..n_values) are the raw cell strings, one
 * per attribute (n_values must equal birnn_detector_n_attrs). Every cell
 * of the tuple is scored. Fails if row_id already exists. */
birnn_status birnn_session_insert(birnn_session* session, int64_t row_id,
                                  const char* const* values,
                                  int32_t n_values);

/* Updates one cell of an existing tuple; only that cell is re-scored. */
birnn_status birnn_session_update(birnn_session* session, int64_t row_id,
                                  int32_t attr, const char* value);

/* Removes a tuple (and its verdicts). No cell is scored. */
birnn_status birnn_session_delete_row(birnn_session* session,
                                      int64_t row_id);

/* Latest verdict for a materialized cell. */
birnn_status birnn_session_verdict(const birnn_session* session,
                                   int64_t row_id, int32_t attr,
                                   birnn_verdict* out);

/* Live materialized tuple count; -1 on a NULL session. */
int64_t birnn_session_num_rows(const birnn_session* session);

/* Drift alarms latched so far (live ingest statistics diverging from the
 * bundle's frozen train-time baselines); -1 on a NULL session. */
int64_t birnn_session_drift_alarms(const birnn_session* session);

/* Re-arms drift detection: clears every latched alarm and restarts the
 * live statistics windows, so the stream is judged fresh against the
 * serving bundle's baselines (call after swapping in an adapted
 * detector). Returns the number of alarms cleared; -1 on NULL. */
int64_t birnn_session_reset_drift_alarms(birnn_session* session);

/* Tuples currently held in the session's adaptation reservoir (the most
 * recently ingested rows, the fine-tune sample source); -1 on NULL. */
int64_t birnn_session_reservoir_rows(const birnn_session* session);

/* ------------------------------------------------------------------------
 * Drift-triggered adaptation (adapt/controller.h): fine-tune the detector
 * on the session's reservoir and promote the candidate only if it
 * beats-or-matches the incumbent on a held-back validation slice.
 * ---------------------------------------------------------------------- */

typedef struct birnn_adapt_options {
  /* Fewest reservoir tuples worth fine-tuning on; below it the run is
   * skipped. */
  int64_t min_reservoir_rows;
  /* Fraction of reservoir tuples held back as the gate's validation
   * slice (split by tuple, deterministically). */
  double validation_fraction;
  /* Replication factor for training cells of drifted attributes. */
  int32_t drift_boost;
  /* Warm fine-tune schedule (short, reduced LR). */
  int32_t fine_tune_epochs;
  float learning_rate;
  /* 1 = only recalibrate batch-norm statistics, no gradient steps. */
  int32_t bn_only;
  /* Promotion gate: candidate F1 must be >= incumbent F1 - f1_band. */
  double f1_band;
  uint64_t seed;
  /* Fine-tune worker threads (0 = run on the calling thread). */
  int32_t train_threads;
  /* Optional directory to save a promoted candidate as a full bundle
   * (manifest v3, re-quantized shadow weights); NULL = don't save. */
  const char* candidate_dir;
} birnn_adapt_options;

/* Fills *options with the library defaults (always call this first so new
 * fields appended later keep working). */
void birnn_adapt_options_init(birnn_adapt_options* options);

/* Supervision callback: return 0 (clean) or 1 (error) for a reservoir
 * cell, or a negative value to let the library fall back to the cell's
 * own stored verdict (self-training). */
typedef int32_t (*birnn_adapt_label_fn)(void* ctx, int64_t row_id,
                                        int32_t attr);

/* Values of birnn_adapt_result.outcome. */
typedef enum birnn_adapt_outcome {
  BIRNN_ADAPT_PROMOTED = 0, /* candidate passed the gate. */
  BIRNN_ADAPT_REJECTED = 1, /* gate failed; incumbent untouched. */
  BIRNN_ADAPT_SKIPPED = 2   /* nothing attempted (reservoir too small). */
} birnn_adapt_outcome;

typedef struct birnn_adapt_result {
  int32_t outcome; /* one of birnn_adapt_outcome. */
  double incumbent_f1;
  double candidate_f1;
  int64_t reservoir_rows;
  int64_t train_cells;
  int64_t validation_cells;
  /* 1 when the candidate's validation sweep reproduced bit-exactly (a
   * gate requirement). */
  int32_t deterministic_eval;
} birnn_adapt_result;

/* Runs one adaptation attempt: fine-tunes a copy of `incumbent` on the
 * session's reservoir (labels from the callback, or the stored verdicts
 * when `labels` is NULL / returns negative) and gates it on a held-back
 * validation slice. `gate_labels` (optional) supervises only the gate — a
 * trusted label source that can reject a candidate trained on bad labels.
 * On BIRNN_ADAPT_PROMOTED, *promoted receives a new detector handle (free
 * it like any other; open fresh sessions against it) and the session's
 * drift alarms are reset; otherwise *promoted is NULL. `result` may be
 * NULL if the caller only wants the status. */
birnn_status birnn_adapt_run(const birnn_detector* incumbent,
                             birnn_session* session,
                             const birnn_adapt_options* options,
                             birnn_adapt_label_fn labels, void* labels_ctx,
                             birnn_adapt_label_fn gate_labels,
                             void* gate_labels_ctx,
                             birnn_adapt_result* result,
                             birnn_detector** promoted);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* BIRNN_C_H_ */
